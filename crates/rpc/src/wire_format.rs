//! Schema-driven wire format for host-crossing hops.
//!
//! Because both ends of a hop hold the same [`ServiceSchema`] (distributed by
//! the controller), nothing on the wire is self-describing: no field names,
//! no tags, no type bytes. A message costs its routing metadata (varints)
//! plus exactly its field bytes. This is the "minimum set of headers needed
//! to satisfy the network requirements" of paper §4 Q2 taken to its limit —
//! the general format here carries *all* schema fields; the dataplane's
//! header-minimized fast path (see `adn-wire::header`) can carry fewer.

use std::sync::Arc;

use adn_wire::codec::{Decoder, Encoder, WireError, WireResult};
use adn_wire::header::{OverloadContext, TraceContext};

use crate::message::{MessageKind, RpcMessage, RpcStatus};
use crate::schema::{RpcSchema, ServiceSchema};
use crate::value::{Value, ValueType};

/// Frame kind discriminants on the wire (low bit of the kind byte).
const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;
/// Kind-byte flag: an [`OverloadContext`] follows the trace slot. Packing
/// presence into a spare bit of the existing kind byte (instead of a
/// dedicated presence byte like the trace slot's) keeps messages without a
/// deadline byte-identical to the pre-extension format — the zero-cost-
/// when-off guarantee the golden sim log pins.
const KIND_FLAG_DEADLINE: u8 = 0b10;
const KIND_BITS: u8 = 0b01;
/// Status discriminants.
const STATUS_OK: u8 = 0;
const STATUS_ABORTED: u8 = 1;
const STATUS_SHED: u8 = 2;
/// Trace-context presence discriminants.
const TRACE_ABSENT: u8 = 0;
const TRACE_PRESENT: u8 = 1;

/// Encodes one value with no tag, by schema-known type.
pub fn encode_value(enc: &mut Encoder, v: &Value) {
    match v {
        Value::U64(x) => enc.put_varint(*x),
        Value::I64(x) => enc.put_varint_signed(*x),
        Value::F64(x) => enc.put_f64(*x),
        Value::Bool(x) => enc.put_u8(*x as u8),
        Value::Str(x) => enc.put_str(x),
        Value::Bytes(x) => enc.put_bytes(x),
    }
}

/// Decodes one value of schema-known type.
pub fn decode_value(dec: &mut Decoder<'_>, ty: ValueType) -> WireResult<Value> {
    Ok(match ty {
        ValueType::U64 => Value::U64(dec.get_varint()?),
        ValueType::I64 => Value::I64(dec.get_varint_signed()?),
        ValueType::F64 => Value::F64(dec.get_f64()?),
        ValueType::Bool => match dec.get_u8()? {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            t => {
                return Err(WireError::InvalidTag {
                    tag: t as u64,
                    context: "bool field",
                })
            }
        },
        ValueType::Str => Value::Str(dec.get_str()?.to_owned()),
        ValueType::Bytes => Value::Bytes(dec.get_bytes()?.to_owned()),
    })
}

/// Serializes a full message into `enc`. Returns bytes written.
pub fn encode_message(enc: &mut Encoder, msg: &RpcMessage) -> WireResult<usize> {
    let start = enc.len();
    enc.put_varint(msg.call_id);
    enc.put_varint(msg.method_id as u64);
    let mut kind_byte = match msg.kind {
        MessageKind::Request => KIND_REQUEST,
        MessageKind::Response => KIND_RESPONSE,
    };
    if msg.deadline.is_some() {
        kind_byte |= KIND_FLAG_DEADLINE;
    }
    enc.put_u8(kind_byte);
    match &msg.status {
        RpcStatus::Ok => enc.put_u8(STATUS_OK),
        RpcStatus::Aborted { code, message } => {
            enc.put_u8(STATUS_ABORTED);
            enc.put_varint(*code as u64);
            enc.put_str(message);
        }
        RpcStatus::Shed => enc.put_u8(STATUS_SHED),
    }
    enc.put_varint(msg.src);
    enc.put_varint(msg.dst);
    match &msg.trace {
        None => enc.put_u8(TRACE_ABSENT),
        Some(ctx) => {
            enc.put_u8(TRACE_PRESENT);
            ctx.encode(enc);
        }
    }
    if let Some(ctx) = &msg.deadline {
        ctx.encode(enc);
    }
    for v in &msg.fields {
        encode_value(enc, v);
    }
    Ok(enc.len() - start)
}

/// Serializes a message into a fresh buffer.
pub fn encode_message_to_vec(msg: &RpcMessage) -> WireResult<Vec<u8>> {
    let mut enc = Encoder::with_capacity(64 + msg.size_hint());
    encode_message(&mut enc, msg)?;
    Ok(enc.into_bytes())
}

/// Serializes a message into a caller-supplied buffer (typically drawn from a
/// `BufferPool`), appending to whatever it already holds. Returns the buffer
/// so hot paths can recycle it after the send.
pub fn encode_message_into(buf: Vec<u8>, msg: &RpcMessage) -> WireResult<Vec<u8>> {
    let mut enc = Encoder::from_vec(buf);
    encode_message(&mut enc, msg)?;
    Ok(enc.into_bytes())
}

/// The routing metadata at the front of every encoded message — everything a
/// dataplane hop can learn without resolving the field schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Call identifier.
    pub call_id: u64,
    /// Method identifier (schema lookup key).
    pub method_id: u16,
    /// Request or response.
    pub kind: MessageKind,
    /// Whether the message carries an aborted status.
    pub aborted: bool,
    /// Originating endpoint.
    pub src: u64,
    /// Destination endpoint.
    pub dst: u64,
    /// In-band trace context, if present.
    pub trace: Option<TraceContext>,
    /// In-band overload context (deadline budget + priority), if present.
    /// Lives in the envelope so admission control can drop expired frames
    /// and rank shedding candidates without a full field decode.
    pub deadline: Option<OverloadContext>,
}

/// Parses only the envelope (call id through trace slot) of an encoded
/// message, stopping before any field bytes. This is the batched serve
/// loop's shared header-parse fast path: classification (dedup hit, flow
/// route, shard choice) needs the envelope alone, so frames that replay a
/// cached reply or route by flow never pay a full `decode_message`.
pub fn peek_envelope(buf: &[u8]) -> WireResult<Envelope> {
    let mut dec = Decoder::new(buf);
    let call_id = dec.get_varint()?;
    let method_raw = dec.get_varint()?;
    if method_raw > u16::MAX as u64 {
        return Err(WireError::InvalidTag {
            tag: method_raw,
            context: "method id",
        });
    }
    let kind_raw = dec.get_u8()?;
    if kind_raw & !(KIND_BITS | KIND_FLAG_DEADLINE) != 0 {
        return Err(WireError::InvalidTag {
            tag: kind_raw as u64,
            context: "message kind",
        });
    }
    let kind = match kind_raw & KIND_BITS {
        KIND_REQUEST => MessageKind::Request,
        _ => MessageKind::Response,
    };
    let aborted = match dec.get_u8()? {
        STATUS_OK => false,
        STATUS_ABORTED => {
            dec.get_varint()?;
            dec.get_str()?;
            true
        }
        STATUS_SHED => true,
        t => {
            return Err(WireError::InvalidTag {
                tag: t as u64,
                context: "status",
            })
        }
    };
    let src = dec.get_varint()?;
    let dst = dec.get_varint()?;
    let trace = match dec.get_u8()? {
        TRACE_ABSENT => None,
        TRACE_PRESENT => Some(TraceContext::decode(&mut dec)?),
        t => {
            return Err(WireError::InvalidTag {
                tag: t as u64,
                context: "trace presence",
            })
        }
    };
    let deadline = if kind_raw & KIND_FLAG_DEADLINE != 0 {
        Some(OverloadContext::decode(&mut dec)?)
    } else {
        None
    };
    Ok(Envelope {
        call_id,
        method_id: method_raw as u16,
        kind,
        aborted,
        src,
        dst,
        trace,
        deadline,
    })
}

/// Deserializes a message, resolving the field schema through `service`.
pub fn decode_message(dec: &mut Decoder<'_>, service: &ServiceSchema) -> WireResult<RpcMessage> {
    let call_id = dec.get_varint()?;
    let method_raw = dec.get_varint()?;
    if method_raw > u16::MAX as u64 {
        return Err(WireError::InvalidTag {
            tag: method_raw,
            context: "method id",
        });
    }
    let method_id = method_raw as u16;
    let kind_raw = dec.get_u8()?;
    if kind_raw & !(KIND_BITS | KIND_FLAG_DEADLINE) != 0 {
        return Err(WireError::InvalidTag {
            tag: kind_raw as u64,
            context: "message kind",
        });
    }
    let kind = match kind_raw & KIND_BITS {
        KIND_REQUEST => MessageKind::Request,
        _ => MessageKind::Response,
    };
    let status = match dec.get_u8()? {
        STATUS_OK => RpcStatus::Ok,
        STATUS_ABORTED => {
            let code_raw = dec.get_varint()?;
            if code_raw > u32::MAX as u64 {
                return Err(WireError::InvalidTag {
                    tag: code_raw,
                    context: "abort code",
                });
            }
            RpcStatus::Aborted {
                code: code_raw as u32,
                message: dec.get_str()?.to_owned(),
            }
        }
        STATUS_SHED => RpcStatus::Shed,
        t => {
            return Err(WireError::InvalidTag {
                tag: t as u64,
                context: "status",
            })
        }
    };
    let src = dec.get_varint()?;
    let dst = dec.get_varint()?;
    let trace = match dec.get_u8()? {
        TRACE_ABSENT => None,
        TRACE_PRESENT => Some(TraceContext::decode(dec)?),
        t => {
            return Err(WireError::InvalidTag {
                tag: t as u64,
                context: "trace presence",
            })
        }
    };
    let deadline = if kind_raw & KIND_FLAG_DEADLINE != 0 {
        Some(OverloadContext::decode(dec)?)
    } else {
        None
    };

    let method = service
        .method_by_id(method_id)
        .ok_or(WireError::InvalidTag {
            tag: method_id as u64,
            context: "unknown method id",
        })?;
    let schema: Arc<RpcSchema> = match kind {
        MessageKind::Request => method.request.clone(),
        MessageKind::Response => method.response.clone(),
    };
    let mut fields = Vec::with_capacity(schema.len());
    for fd in schema.fields() {
        fields.push(decode_value(dec, fd.ty)?);
    }
    Ok(RpcMessage {
        call_id,
        method_id,
        kind,
        status,
        src,
        dst,
        trace,
        deadline,
        schema,
        fields,
    })
}

/// Decodes a message from a standalone buffer, requiring full consumption.
pub fn decode_message_exact(buf: &[u8], service: &ServiceSchema) -> WireResult<RpcMessage> {
    let mut dec = Decoder::new(buf);
    let msg = decode_message(&mut dec, service)?;
    if !dec.is_exhausted() {
        return Err(WireError::Malformed("trailing bytes after message"));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{MethodDef, RpcSchema, ServiceSchema};

    fn service() -> ServiceSchema {
        let request = Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        ServiceSchema::new(
            "ObjectStore",
            vec![MethodDef {
                id: 1,
                name: "Get".into(),
                request,
                response,
            }],
        )
        .unwrap()
    }

    fn sample_request(svc: &ServiceSchema) -> RpcMessage {
        let m = svc.method_by_id(1).unwrap();
        let mut msg = RpcMessage::request(77, 1, m.request.clone())
            .with("object_id", 42u64)
            .with("username", "alice")
            .with("payload", vec![1u8, 2, 3]);
        msg.src = 100;
        msg.dst = 200;
        msg
    }

    #[test]
    fn request_roundtrip() {
        let svc = service();
        let msg = sample_request(&svc);
        let bytes = encode_message_to_vec(&msg).unwrap();
        let back = decode_message_exact(&bytes, &svc).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn aborted_status_roundtrips() {
        let svc = service();
        let mut msg = sample_request(&svc);
        msg.abort(7, "permission denied");
        let bytes = encode_message_to_vec(&msg).unwrap();
        let back = decode_message_exact(&bytes, &svc).unwrap();
        assert_eq!(back.status, msg.status);
    }

    #[test]
    fn response_uses_response_schema() {
        let svc = service();
        let req = sample_request(&svc);
        let m = svc.method_by_id(1).unwrap();
        let resp = RpcMessage::response_to(&req, m.response.clone()).with("ok", true);
        let bytes = encode_message_to_vec(&resp).unwrap();
        let back = decode_message_exact(&bytes, &svc).unwrap();
        assert_eq!(back.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(back.kind, MessageKind::Response);
    }

    #[test]
    fn unknown_method_rejected() {
        let svc = service();
        let mut msg = sample_request(&svc);
        msg.method_id = 99;
        let bytes = encode_message_to_vec(&msg).unwrap();
        assert!(decode_message_exact(&bytes, &svc).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let svc = service();
        let mut bytes = encode_message_to_vec(&sample_request(&svc)).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_message_exact(&bytes, &svc),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let svc = service();
        let bytes = encode_message_to_vec(&sample_request(&svc)).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                decode_message_exact(&bytes[..cut], &svc).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn wire_size_is_compact() {
        // The paper's workload: short byte strings. Metadata overhead should
        // be a handful of bytes, not HTTP-sized.
        let svc = service();
        let msg = sample_request(&svc);
        let bytes = encode_message_to_vec(&msg).unwrap();
        // 2(call)+1(method)+1(kind)+1(status)+1(src)+2(dst)+1(trace)+1+6+4
        // field bytes.
        assert!(bytes.len() < 32, "got {} bytes", bytes.len());
    }

    #[test]
    fn peek_envelope_matches_full_decode() {
        let svc = service();
        let mut msg = sample_request(&svc);
        msg.trace = Some(TraceContext {
            trace_id: 0xbeef,
            parent_span: 3,
            budget: false,
        });
        let bytes = encode_message_to_vec(&msg).unwrap();
        let env = peek_envelope(&bytes).unwrap();
        assert_eq!(env.call_id, msg.call_id);
        assert_eq!(env.method_id, msg.method_id);
        assert_eq!(env.kind, msg.kind);
        assert!(!env.aborted);
        assert_eq!(env.src, msg.src);
        assert_eq!(env.dst, msg.dst);
        assert_eq!(env.trace, msg.trace);

        msg.abort(7, "nope");
        let bytes = encode_message_to_vec(&msg).unwrap();
        assert!(peek_envelope(&bytes).unwrap().aborted);
    }

    #[test]
    fn peek_envelope_stops_before_field_bytes() {
        let svc = service();
        let bytes = encode_message_to_vec(&sample_request(&svc)).unwrap();
        let envelope_len = (0..=bytes.len())
            .find(|&n| peek_envelope(&bytes[..n]).is_ok())
            .expect("peek must succeed on the full message");
        assert!(
            envelope_len < bytes.len(),
            "peek must not need the field bytes"
        );
        for cut in 0..envelope_len {
            assert!(peek_envelope(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn encode_into_appends_and_matches_fresh_encode() {
        let svc = service();
        let msg = sample_request(&svc);
        let fresh = encode_message_to_vec(&msg).unwrap();
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(b"xx");
        buf = encode_message_into(buf, &msg).unwrap();
        assert_eq!(&buf[..2], b"xx");
        assert_eq!(&buf[2..], fresh.as_slice());
    }

    #[test]
    fn deadline_context_roundtrips_on_the_wire() {
        use adn_wire::header::Priority;
        let svc = service();
        let mut msg = sample_request(&svc);
        msg.deadline = Some(OverloadContext::root(250_000, Priority::Critical));
        let bytes = encode_message_to_vec(&msg).unwrap();
        let back = decode_message_exact(&bytes, &svc).unwrap();
        assert_eq!(back.deadline, msg.deadline);
        assert_eq!(back, msg);
        let env = peek_envelope(&bytes).unwrap();
        assert_eq!(env.deadline, msg.deadline);
        for cut in 0..bytes.len() {
            assert!(
                decode_message_exact(&bytes[..cut], &svc).is_err(),
                "deadlined truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn no_deadline_is_byte_identical_to_pre_extension_format() {
        // Presence rides a spare bit of the kind byte, so a message without
        // an overload context costs zero extra bytes — not even a presence
        // byte. This is what keeps the golden sim log valid.
        let svc = service();
        let msg = sample_request(&svc);
        let plain = encode_message_to_vec(&msg).unwrap();
        let mut with = msg.clone();
        with.deadline = Some(OverloadContext::root(
            1,
            adn_wire::header::Priority::Sheddable,
        ));
        let stamped = encode_message_to_vec(&with).unwrap();
        // budget 1 = 1-byte varint, +1 priority byte; same kind-byte count.
        assert_eq!(stamped.len(), plain.len() + 2);
        assert_eq!(peek_envelope(&plain).unwrap().deadline, None);
    }

    #[test]
    fn shed_status_roundtrips_and_peeks_as_failure() {
        let svc = service();
        let mut msg = sample_request(&svc);
        msg.status = RpcStatus::Shed;
        let bytes = encode_message_to_vec(&msg).unwrap();
        let back = decode_message_exact(&bytes, &svc).unwrap();
        assert_eq!(back.status, RpcStatus::Shed);
        assert!(peek_envelope(&bytes).unwrap().aborted);
    }

    #[test]
    fn unknown_kind_bits_rejected() {
        let svc = service();
        let good = encode_message_to_vec(&sample_request(&svc)).unwrap();
        // The kind byte sits after call_id (1 byte here) + method_id (1).
        let mut bad = good.clone();
        bad[2] |= 0b100;
        assert!(peek_envelope(&bad).is_err());
        assert!(decode_message_exact(&bad, &svc).is_err());
    }

    #[test]
    fn trace_context_roundtrips_on_the_wire() {
        let svc = service();
        let mut msg = sample_request(&svc);
        msg.trace = Some(TraceContext {
            trace_id: 0xfeed_f00d,
            parent_span: 9,
            budget: true,
        });
        let bytes = encode_message_to_vec(&msg).unwrap();
        let back = decode_message_exact(&bytes, &svc).unwrap();
        assert_eq!(back.trace, msg.trace);
        assert_eq!(back, msg);

        // trace_id 0xfeed_f00d is a 5-byte varint; +1 parent span, +1 budget.
        let untraced = encode_message_to_vec(&sample_request(&svc)).unwrap();
        assert_eq!(bytes.len(), untraced.len() + 7);
        for cut in 0..bytes.len() {
            assert!(
                decode_message_exact(&bytes[..cut], &svc).is_err(),
                "traced truncation at {cut} must fail"
            );
        }
    }
}
