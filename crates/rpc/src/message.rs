//! The structured RPC message every ADN engine processes.
//!
//! An [`RpcMessage`] stays in this structured form for its entire life on a
//! host — engines read and write typed fields directly, which is precisely
//! the property (inherited from mRPC) that lets ADN skip the parse/serialize
//! cycles a sidecar mesh pays at every hop.

use std::fmt;
use std::sync::Arc;

use adn_wire::header::{OverloadContext, TraceContext};

use crate::schema::RpcSchema;
use crate::value::Value;

/// Whether a message is a request or a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    Request,
    Response,
}

/// Delivery status carried with a message. Elements that reject RPCs (ACL,
/// fault injection, admission control) set `Aborted`; the runtime then
/// reflects an aborted request back to the caller as an error response
/// without invoking the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcStatus {
    /// Normal delivery.
    Ok,
    /// Rejected by a network element.
    Aborted {
        /// Application-meaningful code (e.g. 7 = permission denied).
        code: u32,
        /// Human-readable reason.
        message: String,
    },
    /// Refused by admission control at an overloaded hop. A fast-fail: the
    /// request was never executed, and the caller should back off rather
    /// than retry into the collapse.
    Shed,
}

impl RpcStatus {
    /// Whether the status is `Ok`.
    pub fn is_ok(&self) -> bool {
        matches!(self, RpcStatus::Ok)
    }
}

/// A structured RPC message: routing metadata plus schema-ordered fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcMessage {
    /// Caller-assigned correlation id; responses echo it.
    pub call_id: u64,
    /// Method wire id (resolved against the service schema).
    pub method_id: u16,
    /// Request or response.
    pub kind: MessageKind,
    /// Delivery status.
    pub status: RpcStatus,
    /// Flat source endpoint identifier (virtual link layer address).
    pub src: u64,
    /// Flat destination endpoint identifier. Load balancers rewrite this.
    pub dst: u64,
    /// In-band trace context, present when the originating client sampled
    /// this call. Responses echo the request's context; retransmits reuse
    /// it (the payload is encoded once), so a trace id survives NAT,
    /// dedup, and retry unchanged.
    pub trace: Option<TraceContext>,
    /// In-band overload context (remaining deadline budget + priority),
    /// present when the originating client propagates its deadline. Hops
    /// decrement the budget as they spend the caller's patience; responses
    /// echo the request's context. Like `trace`, retransmits reuse the
    /// stamped payload, so dedup and NAT never fork or refresh a budget.
    pub deadline: Option<OverloadContext>,
    /// The message schema. Shared, immutable.
    pub schema: Arc<RpcSchema>,
    /// Field values, positionally matching `schema`.
    pub fields: Vec<Value>,
}

impl RpcMessage {
    /// Creates a request with all fields defaulted.
    pub fn request(call_id: u64, method_id: u16, schema: Arc<RpcSchema>) -> Self {
        let fields = schema.default_values();
        Self {
            call_id,
            method_id,
            kind: MessageKind::Request,
            status: RpcStatus::Ok,
            src: 0,
            dst: 0,
            trace: None,
            deadline: None,
            schema,
            fields,
        }
    }

    /// Creates a response correlated with `req`, fields defaulted to the
    /// response schema.
    pub fn response_to(req: &RpcMessage, response_schema: Arc<RpcSchema>) -> Self {
        let fields = response_schema.default_values();
        Self {
            call_id: req.call_id,
            method_id: req.method_id,
            kind: MessageKind::Response,
            status: RpcStatus::Ok,
            src: req.dst,
            dst: req.src,
            trace: req.trace,
            deadline: req.deadline,
            schema: response_schema,
            fields,
        }
    }

    /// Reads a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.schema.index_of(name).map(|i| &self.fields[i])
    }

    /// Reads a field by index (compiled plans use this path).
    #[inline]
    pub fn get_idx(&self, idx: usize) -> &Value {
        &self.fields[idx]
    }

    /// Writes a field by name; returns false if the field doesn't exist.
    pub fn set(&mut self, name: &str, value: Value) -> bool {
        match self.schema.index_of(name) {
            Some(i) => {
                self.fields[i] = value;
                true
            }
            None => false,
        }
    }

    /// Writes a field by index (compiled plans use this path).
    #[inline]
    pub fn set_idx(&mut self, idx: usize, value: Value) {
        self.fields[idx] = value;
    }

    /// Builder-style field assignment for tests and examples.
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> Self {
        let ok = self.set(name, value.into());
        debug_assert!(ok, "unknown field {name:?}");
        self
    }

    /// Marks the message aborted.
    pub fn abort(&mut self, code: u32, message: impl Into<String>) {
        self.status = RpcStatus::Aborted {
            code,
            message: message.into(),
        };
    }

    /// Approximate payload size (sum of field sizes), for telemetry.
    pub fn size_hint(&self) -> usize {
        self.fields.iter().map(Value::size_hint).sum()
    }
}

impl fmt::Display for RpcMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            MessageKind::Request => "REQ",
            MessageKind::Response => "RESP",
        };
        write!(
            f,
            "{kind} call={} method={} {}->{}",
            self.call_id, self.method_id, self.src, self.dst
        )?;
        match &self.status {
            RpcStatus::Ok => {}
            RpcStatus::Aborted { code, message } => write!(f, " ABORTED({code}: {message})")?,
            RpcStatus::Shed => write!(f, " SHED")?,
        }
        write!(f, " {{")?;
        for (i, (fd, v)) in self.schema.fields().iter().zip(&self.fields).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {v}", fd.name)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RpcSchema;
    use crate::value::ValueType;

    fn schema() -> Arc<RpcSchema> {
        Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn request_defaults_then_set_get() {
        let mut m = RpcMessage::request(1, 2, schema());
        assert_eq!(m.get("object_id"), Some(&Value::U64(0)));
        assert!(m.set("object_id", Value::U64(42)));
        assert_eq!(m.get("object_id"), Some(&Value::U64(42)));
        assert!(!m.set("missing", Value::U64(1)));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn response_swaps_endpoints_and_keeps_call_id() {
        let mut req = RpcMessage::request(99, 1, schema());
        req.src = 10;
        req.dst = 20;
        let resp_schema = Arc::new(
            RpcSchema::builder()
                .field("status", ValueType::U64)
                .build()
                .unwrap(),
        );
        let resp = RpcMessage::response_to(&req, resp_schema);
        assert_eq!(resp.call_id, 99);
        assert_eq!(resp.kind, MessageKind::Response);
        assert_eq!((resp.src, resp.dst), (20, 10));
    }

    #[test]
    fn response_echoes_trace_context() {
        let mut req = RpcMessage::request(1, 1, schema());
        assert_eq!(req.trace, None);
        req.trace = Some(TraceContext::root(42));
        let resp = RpcMessage::response_to(&req, schema());
        assert_eq!(resp.trace, Some(TraceContext::root(42)));
    }

    #[test]
    fn response_echoes_deadline_context() {
        use adn_wire::header::{OverloadContext, Priority};
        let mut req = RpcMessage::request(1, 1, schema());
        assert_eq!(req.deadline, None);
        req.deadline = Some(OverloadContext::root(5_000, Priority::Important));
        let resp = RpcMessage::response_to(&req, schema());
        assert_eq!(
            resp.deadline,
            Some(OverloadContext::root(5_000, Priority::Important))
        );
    }

    #[test]
    fn abort_sets_status() {
        let mut m = RpcMessage::request(1, 1, schema());
        assert!(m.status.is_ok());
        m.abort(7, "permission denied");
        assert!(!m.status.is_ok());
        assert!(m.to_string().contains("ABORTED(7"));
    }

    #[test]
    fn builder_with_sets_fields() {
        let m = RpcMessage::request(1, 1, schema())
            .with("object_id", 5u64)
            .with("username", "alice");
        assert_eq!(m.get("username"), Some(&Value::Str("alice".into())));
        assert!(m.to_string().contains("username: 'alice'"));
    }

    #[test]
    fn size_hint_counts_payload() {
        let m = RpcMessage::request(1, 1, schema()).with("username", "abcd");
        assert_eq!(m.size_hint(), 8 + 4);
    }
}
