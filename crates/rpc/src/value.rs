//! Typed RPC field values.
//!
//! ADN views an RPC as "a tuple with one or more fields" (paper §5.1). This
//! module defines the scalar value domain those tuples range over, plus the
//! comparison/arithmetic semantics the DSL evaluator and compiled plans use.

use std::cmp::Ordering;
use std::fmt;

use adn_wire::header::{HeaderType, HeaderValue};

/// The scalar types an RPC field (or element state column) may have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    U64,
    I64,
    F64,
    Bool,
    Str,
    Bytes,
}

impl ValueType {
    /// The corresponding wire header type.
    pub fn header_type(self) -> HeaderType {
        match self {
            ValueType::U64 => HeaderType::U64,
            ValueType::I64 => HeaderType::I64,
            ValueType::F64 => HeaderType::F64,
            ValueType::Bool => HeaderType::Bool,
            ValueType::Str => HeaderType::Str,
            ValueType::Bytes => HeaderType::Bytes,
        }
    }

    /// Parses a DSL type name.
    pub fn parse(name: &str) -> Option<ValueType> {
        Some(match name {
            "u64" | "uint" => ValueType::U64,
            "i64" | "int" => ValueType::I64,
            "f64" | "float" => ValueType::F64,
            "bool" => ValueType::Bool,
            "string" | "str" => ValueType::Str,
            "bytes" => ValueType::Bytes,
            _ => return None,
        })
    }

    /// Whether this type supports arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueType::U64 | ValueType::I64 | ValueType::F64)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::U64 => "u64",
            ValueType::I64 => "i64",
            ValueType::F64 => "f64",
            ValueType::Bool => "bool",
            ValueType::Str => "string",
            ValueType::Bytes => "bytes",
        };
        f.write_str(s)
    }
}

/// A single RPC field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    Bytes(Vec<u8>),
}

impl Value {
    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::U64(_) => ValueType::U64,
            Value::I64(_) => ValueType::I64,
            Value::F64(_) => ValueType::F64,
            Value::Bool(_) => ValueType::Bool,
            Value::Str(_) => ValueType::Str,
            Value::Bytes(_) => ValueType::Bytes,
        }
    }

    /// A zero/empty value of the given type, used to initialize fields.
    pub fn default_of(ty: ValueType) -> Value {
        match ty {
            ValueType::U64 => Value::U64(0),
            ValueType::I64 => Value::I64(0),
            ValueType::F64 => Value::F64(0.0),
            ValueType::Bool => Value::Bool(false),
            ValueType::Str => Value::Str(String::new()),
            ValueType::Bytes => Value::Bytes(Vec::new()),
        }
    }

    /// Truthiness used by the DSL's WHERE clauses.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::U64(v) => *v != 0,
            Value::I64(v) => *v != 0,
            Value::F64(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
        }
    }

    /// Numeric view as f64, if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrow as a string, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as bytes, if the value is bytes.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// View as u64, if losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            Value::Bool(b) => Some(*b as u64),
            _ => None,
        }
    }

    /// Total ordering used by comparison operators. Numeric types compare by
    /// value across U64/I64/F64; other cross-type comparisons order by type
    /// tag so sorting is always total (needed for deterministic state-table
    /// merges).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::U64(_) | Value::I64(_) | Value::F64(_) => 0,
                Value::Bool(_) => 1,
                Value::Str(_) => 2,
                Value::Bytes(_) => 3,
            }
        }
        match (self, other) {
            (a, b) if tag(a) == 0 && tag(b) == 0 => {
                // Compare integers exactly where possible to avoid f64
                // rounding at the 2^53 boundary.
                match (a, b) {
                    (Value::U64(x), Value::U64(y)) => x.cmp(y),
                    (Value::I64(x), Value::I64(y)) => x.cmp(y),
                    (Value::U64(x), Value::I64(y)) => {
                        if *y < 0 {
                            Ordering::Greater
                        } else {
                            x.cmp(&(*y as u64))
                        }
                    }
                    (Value::I64(x), Value::U64(y)) => {
                        if *x < 0 {
                            Ordering::Less
                        } else {
                            (*x as u64).cmp(y)
                        }
                    }
                    _ => {
                        let x = a.as_f64().unwrap_or(f64::NAN);
                        let y = b.as_f64().unwrap_or(f64::NAN);
                        x.total_cmp(&y)
                    }
                }
            }
            (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
            (Value::Str(x), Value::Str(y)) => x.cmp(y),
            (Value::Bytes(x), Value::Bytes(y)) => x.cmp(y),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }

    /// Equality under the DSL's `==` (numeric cross-type equality allowed).
    pub fn dsl_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Stable 64-bit hash of the value, used for key-based load balancing
    /// and consistent-hash state partitioning. FNV-1a over a typed prefix.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        fn feed(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        match self {
            // Numerics hash by canonical numeric value so U64(5)/I64(5) agree.
            Value::U64(v) => feed(feed(OFFSET, &[0]), &v.to_le_bytes()),
            Value::I64(v) if *v >= 0 => feed(feed(OFFSET, &[0]), &(*v as u64).to_le_bytes()),
            Value::I64(v) => feed(feed(OFFSET, &[1]), &v.to_le_bytes()),
            Value::F64(v) => feed(feed(OFFSET, &[2]), &v.to_bits().to_le_bytes()),
            Value::Bool(b) => feed(feed(OFFSET, &[3]), &[*b as u8]),
            Value::Str(s) => feed(feed(OFFSET, &[4]), s.as_bytes()),
            Value::Bytes(b) => feed(feed(OFFSET, &[5]), b),
        }
    }

    /// Converts to the wire-layer representation.
    pub fn to_header_value(&self) -> HeaderValue {
        match self {
            Value::U64(v) => HeaderValue::U64(*v),
            Value::I64(v) => HeaderValue::I64(*v),
            Value::F64(v) => HeaderValue::F64(*v),
            Value::Bool(v) => HeaderValue::Bool(*v),
            Value::Str(v) => HeaderValue::Str(v.clone()),
            Value::Bytes(v) => HeaderValue::Bytes(v.clone()),
        }
    }

    /// Converts from the wire-layer representation.
    pub fn from_header_value(hv: HeaderValue) -> Value {
        match hv {
            HeaderValue::U64(v) => Value::U64(v),
            HeaderValue::I64(v) => Value::I64(v),
            HeaderValue::F64(v) => Value::F64(v),
            HeaderValue::Bool(v) => Value::Bool(v),
            HeaderValue::Str(v) => Value::Str(v),
            HeaderValue::Bytes(v) => Value::Bytes(v),
        }
    }

    /// Approximate in-memory size in bytes, used by cost models.
    pub fn size_hint(&self) -> usize {
        match self {
            Value::U64(_) | Value::I64(_) | Value::F64(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
            Value::Bytes(v) => write!(f, "0x{}", hex(v)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_parse() {
        assert_eq!(ValueType::parse("u64"), Some(ValueType::U64));
        assert_eq!(ValueType::parse("string"), Some(ValueType::Str));
        assert_eq!(ValueType::parse("nope"), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::U64(1).is_truthy());
        assert!(!Value::U64(0).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
        assert!(Value::Str("x".into()).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert!(Value::U64(5).dsl_eq(&Value::I64(5)));
        assert!(Value::I64(5).dsl_eq(&Value::F64(5.0)));
        assert!(!Value::U64(5).dsl_eq(&Value::Str("5".into())));
    }

    #[test]
    fn numeric_ordering_exact_at_large_magnitudes() {
        // These differ by 1 but collide when both are rounded to f64.
        let a = Value::U64(u64::MAX);
        let b = Value::U64(u64::MAX - 1);
        assert_eq!(a.total_cmp(&b), Ordering::Greater);
        let c = Value::I64(-1);
        assert_eq!(c.total_cmp(&Value::U64(0)), Ordering::Less);
    }

    #[test]
    fn stable_hash_agrees_across_numeric_reprs() {
        assert_eq!(Value::U64(7).stable_hash(), Value::I64(7).stable_hash());
        assert_ne!(Value::U64(7).stable_hash(), Value::U64(8).stable_hash());
    }

    #[test]
    fn header_value_conversion_roundtrips() {
        for v in [
            Value::U64(9),
            Value::I64(-9),
            Value::F64(1.5),
            Value::Bool(true),
            Value::Str("abc".into()),
            Value::Bytes(vec![1, 2]),
        ] {
            assert_eq!(Value::from_header_value(v.to_header_value()), v);
        }
    }

    #[test]
    fn defaults_match_types() {
        for ty in [
            ValueType::U64,
            ValueType::I64,
            ValueType::F64,
            ValueType::Bool,
            ValueType::Str,
            ValueType::Bytes,
        ] {
            assert_eq!(Value::default_of(ty).value_type(), ty);
        }
    }
}
