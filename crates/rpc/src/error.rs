//! Error types for the RPC runtime.

use std::fmt;

use adn_wire::codec::WireError;

use crate::schema::SchemaError;

/// Errors surfaced by the RPC runtime and transports.
#[derive(Debug)]
pub enum RpcError {
    /// Wire-format encode/decode failure.
    Wire(WireError),
    /// Schema mismatch.
    Schema(SchemaError),
    /// The destination endpoint is unknown to the transport.
    UnknownEndpoint(u64),
    /// The peer or channel closed.
    Disconnected,
    /// A request did not complete within its deadline.
    Timeout { call_id: u64 },
    /// The per-call deadline budget is exhausted: the call failed fast
    /// without issuing another doomed attempt.
    Deadline { call_id: u64 },
    /// An overloaded hop refused the call before executing it. Definitive:
    /// retrying immediately feeds the collapse — back off instead.
    Shed { call_id: u64 },
    /// The per-destination circuit breaker is open: the call failed fast
    /// without touching the network.
    CircuitOpen { endpoint: u64 },
    /// The remote (or a network element) aborted the call.
    Aborted { code: u32, message: String },
    /// Method id not present in the service schema.
    UnknownMethod(u16),
    /// Underlying socket error.
    Io(std::io::Error),
    /// Internal invariant violation (bug).
    Internal(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Wire(e) => write!(f, "wire error: {e}"),
            RpcError::Schema(e) => write!(f, "schema error: {e}"),
            RpcError::UnknownEndpoint(id) => write!(f, "unknown endpoint {id:#x}"),
            RpcError::Disconnected => write!(f, "transport disconnected"),
            RpcError::Timeout { call_id } => write!(f, "call {call_id} timed out"),
            RpcError::Deadline { call_id } => {
                write!(f, "call {call_id} deadline budget exhausted")
            }
            RpcError::Shed { call_id } => {
                write!(f, "call {call_id} shed by overloaded hop")
            }
            RpcError::CircuitOpen { endpoint } => {
                write!(f, "circuit open for endpoint {endpoint:#x}")
            }
            RpcError::Aborted { code, message } => write!(f, "aborted ({code}): {message}"),
            RpcError::UnknownMethod(id) => write!(f, "unknown method id {id}"),
            RpcError::Io(e) => write!(f, "io error: {e}"),
            RpcError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Wire(e) => Some(e),
            RpcError::Schema(e) => Some(e),
            RpcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Wire(e)
    }
}

impl From<SchemaError> for RpcError {
    fn from(e: SchemaError) -> Self {
        RpcError::Schema(e)
    }
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

/// Convenience alias.
pub type RpcResult<T> = Result<T, RpcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RpcError::Timeout { call_id: 5 };
        assert_eq!(e.to_string(), "call 5 timed out");
        let e = RpcError::Aborted {
            code: 7,
            message: "denied".into(),
        };
        assert!(e.to_string().contains("denied"));
    }

    #[test]
    fn conversions() {
        let e: RpcError = WireError::InvalidUtf8.into();
        assert!(matches!(e, RpcError::Wire(_)));
        let e: RpcError = std::io::Error::other("x").into();
        assert!(matches!(e, RpcError::Io(_)));
    }
}
