//! # adn-rpc — a managed RPC runtime in the style of mRPC
//!
//! The ADN prototype (paper §6) runs on mRPC, a *managed RPC system service*:
//! applications hand structured RPC messages to a runtime, and network
//! functions ("engines") process those messages **in structured form**,
//! without any marshal/unmarshal step between co-located engines. Only when a
//! message actually crosses a host boundary is it serialized — and then with
//! a schema-driven, self-description-free format.
//!
//! This crate rebuilds that substrate:
//!
//! * [`value`] / [`schema`] — typed RPC field values and application-declared
//!   message schemas (ADN has no standard headers; the schema *is* the
//!   contract).
//! * [`message`] — [`message::RpcMessage`], the unit every engine processes.
//! * [`wire_format`] — schema-driven encode/decode for host-crossing hops.
//! * [`engine`] — the chainable network-function abstraction and verdicts.
//! * [`transport`] — a flat-identifier virtual link layer (paper §3: "a
//!   (virtual) link layer that can deliver packets to endpoints based on a
//!   flat identifier"), with in-process and TCP realizations.
//! * [`runtime`] — client/server runtimes that pump messages through engine
//!   chains over a transport.
//! * [`chaos`] — a deterministic fault-injecting [`transport::Link`] wrapper
//!   (drops, duplicates, reorders, delays, partitions).
//! * [`retry`] — resilience primitives: retry policies with backoff+jitter,
//!   per-destination circuit breakers, and the at-most-once dedup window.

pub mod chaos;
pub mod engine;

/// Re-export of the shared time-source abstraction ([`adn_wire::clock`]):
/// retry deadlines, breaker windows, heartbeats, and chaos delays all read
/// time through [`clock::Clock`] so the deterministic simulator can
/// substitute virtual time.
pub use adn_wire::clock;
pub mod error;
pub mod message;
pub mod retry;
pub mod runtime;
pub mod schema;
pub mod transport;
pub mod value;
pub mod wire_format;

pub use chaos::{ChaosLink, ChaosPolicy, ChaosStats};
pub use engine::{Engine, EngineChain, Verdict};
pub use error::{RpcError, RpcResult};
pub use message::{MessageKind, RpcMessage, RpcStatus};
pub use retry::{BreakerPolicy, CircuitBreaker, DedupWindow, DegradedMode, RetryPolicy};
pub use schema::{FieldDef, MethodDef, RpcSchema, ServiceSchema};
pub use value::{Value, ValueType};
