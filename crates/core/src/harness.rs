//! Ready-made worlds for examples, integration tests, and the benchmark
//! harness: a full ADN deployment (client, replicas, controller, cluster
//! store) and the equivalent service-mesh deployment, driving the same
//! object-store application over the same in-process fabric.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use adn_cluster::resources::{
    AdnConfig, ElementSpec, NodeId, NodeSpec, ReplicaSpec, ServiceSpec, SmartNicSpec, SwitchId,
    SwitchSpec,
};
use adn_cluster::ClusterStore;
use adn_controller::placement::Environment;
use adn_controller::runtime::AppRegistration;
use adn_controller::Controller;
use adn_mesh::filters::{AccessLogFilter, AclFilter, FaultFilter, MeshFilter};
use adn_mesh::sidecar::{spawn_sidecar, SidecarConfig, Upstream};
use adn_mesh::{MeshClient, MeshServer, SidecarHandle};
use adn_rpc::chaos::{ChaosLink, ChaosPolicy};
use adn_rpc::engine::EngineChain;
use adn_rpc::error::{RpcError, RpcResult};
use adn_rpc::message::RpcMessage;
use adn_rpc::retry::RetryPolicy;
use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig, ServerHandle, ServerStatsSnapshot};
use adn_rpc::schema::{MethodDef, RpcSchema, ServiceSchema};
use adn_rpc::transport::{InProcNetwork, Link};
use adn_rpc::value::{Value, ValueType};

/// The conventional object-store schemas used by the standard elements, the
/// examples, and the paper-evaluation benchmarks.
pub fn object_store_schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
    (
        Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .expect("static schema"),
        ),
        Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .expect("static schema"),
        ),
    )
}

/// The object-store service schema (one method: `Put`).
pub fn object_store_service() -> Arc<ServiceSchema> {
    let (request, response) = object_store_schemas();
    Arc::new(
        ServiceSchema::new(
            "objectstore.ObjectStore",
            vec![MethodDef {
                id: 1,
                name: "Put".into(),
                request,
                response,
            }],
        )
        .expect("static service"),
    )
}

/// Hardware richness of the simulated environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvPreset {
    /// Plain hosts: software processors only (libraries + sidecars).
    Bare,
    /// eBPF-capable kernels, SmartNICs on both hosts, a programmable
    /// switch on the path.
    Rich,
}

impl EnvPreset {
    fn node(self, id: u32) -> NodeSpec {
        NodeSpec {
            id: NodeId(id),
            name: format!("node{id}"),
            cpu_slots: 16,
            ebpf_capable: self == EnvPreset::Rich,
            smartnic: (self == EnvPreset::Rich).then_some(SmartNicSpec { cpu_slots: 8 }),
        }
    }

    fn environment(self) -> Environment {
        Environment {
            client_node: self.node(1),
            server_node: self.node(2),
            switch: (self == EnvPreset::Rich).then_some(SwitchSpec {
                id: SwitchId(1),
                name: "tor".into(),
                programmable: true,
                table_capacity: 4096,
            }),
            allow_in_app: true,
        }
    }
}

/// Fault injection for an [`AdnWorld`]'s fabric: every frame (client,
/// processors, servers, controller deployments) crosses one seeded
/// [`ChaosLink`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Deterministic RNG seed for the fault rolls.
    pub seed: u64,
    /// Default per-frame fault policy.
    pub policy: ChaosPolicy,
}

/// Configuration of an [`AdnWorld`].
#[derive(Clone)]
pub struct WorldConfig {
    /// Element chain (sender side first).
    pub chain: Vec<ElementSpec>,
    /// Destination replica count.
    pub replicas: usize,
    /// Environment hardware.
    pub env: EnvPreset,
    /// RNG seed (fault injection, etc.).
    pub seed: u64,
    /// Wrap the fabric in a [`ChaosLink`] with this config.
    pub chaos: Option<ChaosConfig>,
    /// Record per-object-id server side-effect counts (for verifying
    /// at-most-once execution under retries).
    pub track_effects: bool,
    /// Time source for the controller (autoscale cooldowns, heartbeat
    /// ages, the cluster view's window). `None` uses the system clock;
    /// deterministic tests pass a shared
    /// [`adn_rpc::clock::VirtualClock`] and advance it explicitly.
    pub clock: Option<Arc<dyn adn_rpc::clock::Clock>>,
}

impl std::fmt::Debug for WorldConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldConfig")
            .field("chain", &self.chain)
            .field("replicas", &self.replicas)
            .field("env", &self.env)
            .field("seed", &self.seed)
            .field("chaos", &self.chaos)
            .field("track_effects", &self.track_effects)
            .field("clock", &self.clock.as_ref().map(|_| "<custom>"))
            .finish()
    }
}

impl WorldConfig {
    /// A chain of catalog elements by name, no args, no constraints.
    pub fn of_elements(names: &[&str]) -> Self {
        Self {
            chain: names
                .iter()
                .map(|n| ElementSpec {
                    element: n.to_string(),
                    source: None,
                    args: vec![],
                    constraints: vec![],
                })
                .collect(),
            replicas: 1,
            env: EnvPreset::Bare,
            seed: 0xADB,
            chaos: None,
            track_effects: false,
            clock: None,
        }
    }

    /// The paper §6 evaluation chain: Logging → ACL → Fault(prob).
    pub fn paper_eval_chain(fault_prob: f64) -> Self {
        let mut cfg = Self::of_elements(&["Logging", "Acl", "Fault"]);
        cfg.chain[2].args = vec![("abort_prob".into(), serde_json_number(fault_prob))];
        cfg
    }

    /// One element with arguments.
    pub fn single(name: &str, args: Vec<(String, serde_json::Value)>) -> Self {
        let mut cfg = Self::of_elements(&[name]);
        cfg.chain[0].args = args;
        cfg
    }
}

fn serde_json_number(v: f64) -> serde_json::Value {
    serde_json::Number::from_f64(v)
        .map(serde_json::Value::Number)
        .unwrap_or(serde_json::Value::Null)
}

/// Outcome counters from a closed-loop run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Calls that completed OK.
    pub completed: u64,
    /// Calls rejected by a network element or the server.
    pub aborted: u64,
    /// Transport errors / timeouts.
    pub errors: u64,
}

impl LoopStats {
    /// Total calls resolved.
    pub fn total(&self) -> u64 {
        self.completed + self.aborted + self.errors
    }
}

/// A complete ADN deployment driving the object-store app.
pub struct AdnWorld {
    store: ClusterStore,
    controller: Controller,
    client: Arc<RpcClient>,
    service: Arc<ServiceSchema>,
    events: crossbeam::channel::Receiver<adn_cluster::ClusterEvent>,
    replica_endpoints: Vec<u64>,
    servers: Vec<Arc<ServerHandle>>,
    net: InProcNetwork,
    chaos: Option<Arc<ChaosLink>>,
    effects: Option<Arc<Mutex<HashMap<u64, u64>>>>,
}

/// World construction failure.
#[derive(Debug)]
pub struct WorldError {
    pub message: String,
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WorldError {}

impl AdnWorld {
    /// Starts a world: replicas, client, controller, and the deployed
    /// chain from `config`.
    pub fn start(config: WorldConfig) -> Result<Self, WorldError> {
        let (request, response) = object_store_schemas();
        let service = object_store_service();
        let store = ClusterStore::new();
        let events = store.watch();
        let env = config.env.environment();
        store.add_node(env.client_node.clone());
        store.add_node(env.server_node.clone());

        let net = InProcNetwork::new();
        let chaos = config
            .chaos
            .map(|c| ChaosLink::with_policy(Arc::new(net.clone()), c.seed, c.policy));
        let link: Arc<dyn Link> = match &chaos {
            Some(chaos) => chaos.clone(),
            None => Arc::new(net.clone()),
        };
        let effects = config
            .track_effects
            .then(|| Arc::new(Mutex::new(HashMap::new())));

        // Replicas at 200, 201, ...; each echoes the payload back.
        let replica_endpoints: Vec<u64> = (0..config.replicas as u64).map(|i| 200 + i).collect();
        let mut servers = Vec::new();
        for &endpoint in &replica_endpoints {
            let frames = net.attach(endpoint);
            let svc = service.clone();
            let effect_log = effects.clone();
            servers.push(Arc::new(spawn_server(
                ServerConfig {
                    addr: endpoint,
                    service: service.clone(),
                    chain: EngineChain::new(),
                },
                link.clone(),
                frames,
                Box::new(move |req| {
                    if let (Some(log), Some(Value::U64(oid))) =
                        (effect_log.as_ref(), req.get("object_id"))
                    {
                        *log.lock().entry(*oid).or_insert(0) += 1;
                    }
                    let m = svc.method_by_id(req.method_id).expect("method");
                    let mut resp = RpcMessage::response_to(req, m.response.clone());
                    resp.set("ok", Value::Bool(true));
                    match req.get("payload") {
                        // Empty-payload probes get the replica's identity
                        // back, so tests can observe load-balancer spread
                        // even through multi-hop deployments.
                        Some(Value::Bytes(b)) if b.is_empty() => {
                            resp.set("payload", Value::Bytes(endpoint.to_be_bytes().to_vec()));
                        }
                        Some(p) => {
                            resp.set("payload", p.clone());
                        }
                        None => {}
                    }
                    resp
                }),
            )));
        }
        store.add_service(ServiceSpec {
            name: "storage".into(),
            replicas: replica_endpoints
                .iter()
                .map(|&endpoint| ReplicaSpec {
                    node: NodeId(2),
                    endpoint,
                })
                .collect(),
        });

        let client_frames = net.attach(100);
        let client = RpcClient::new(
            100,
            link.clone(),
            client_frames,
            service.clone(),
            EngineChain::new(),
        );

        // The controller spawns its processors on the same (possibly
        // chaos-wrapped) link the app uses, on the configured time source.
        let clock = config.clock.clone().unwrap_or_else(adn_rpc::clock::system);
        let controller =
            Controller::with_link_and_clock(store.clone(), net.clone(), link, 10_000, clock);

        // Re-export the world's ad-hoc counters through the telemetry
        // registry: one `Registry::snapshot()` now covers fault injection,
        // client resilience, and server dedup alongside element metrics.
        if let Some(chaos) = &chaos {
            let chaos = chaos.clone();
            controller.registry().register_source(move || {
                let s = chaos.stats();
                vec![
                    ("chaos.passed".into(), s.passed),
                    ("chaos.dropped".into(), s.dropped),
                    ("chaos.duplicated".into(), s.duplicated),
                    ("chaos.reordered".into(), s.reordered),
                    ("chaos.delayed".into(), s.delayed),
                    ("chaos.partitioned".into(), s.partitioned),
                ]
            });
        }
        {
            let client = client.clone();
            controller.registry().register_source(move || {
                let s = client.stats();
                vec![
                    ("client.malformed_frames".into(), s.malformed_frames),
                    ("client.orphan_responses".into(), s.orphan_responses),
                    ("client.retries".into(), s.retries),
                    ("client.breaker_rejections".into(), s.breaker_rejections),
                    ("client.fail_open_bypasses".into(), s.fail_open_bypasses),
                ]
            });
        }
        {
            let servers = servers.clone();
            controller.registry().register_source(move || {
                let mut out = Vec::new();
                for server in &servers {
                    let s = server.stats();
                    let tag = server.addr();
                    out.push((format!("server.{tag}.handled"), s.handled));
                    out.push((format!("server.{tag}.malformed_frames"), s.malformed_frames));
                    out.push((format!("server.{tag}.dedup_hits"), s.dedup_hits));
                }
                out
            });
        }
        controller.register_app(
            "app",
            AppRegistration {
                request,
                response,
                service: service.clone(),
                client: client.clone(),
                servers: servers.clone(),
                env,
            },
        );
        store.apply_config(AdnConfig {
            app: "app".into(),
            src_service: "frontend".into(),
            dst_service: "storage".into(),
            chain: config.chain,
            seed: config.seed,
        });
        let world = Self {
            store,
            controller,
            client,
            service,
            events,
            replica_endpoints,
            servers,
            net,
            chaos,
            effects,
        };
        world.sync()?;
        Ok(world)
    }

    /// Reconciles pending cluster events (config/replica changes).
    pub fn sync(&self) -> Result<usize, WorldError> {
        self.controller
            .run_pending(&self.events)
            .map_err(|e| WorldError {
                message: e.to_string(),
            })
    }

    /// Builds a request message.
    pub fn request(&self, object_id: u64, username: &str, payload: &[u8]) -> RpcMessage {
        let m = self.service.method_by_id(1).expect("method");
        RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", object_id)
            .with("username", username)
            .with("payload", payload.to_vec())
    }

    /// One blocking call.
    pub fn call(&self, object_id: u64, username: &str, payload: &[u8]) -> RpcResult<RpcMessage> {
        self.client
            .call(self.request(object_id, username, payload), self.target())
    }

    /// One blocking call with retries, dedup, and circuit breaking — the
    /// path chaos tests drive.
    pub fn call_resilient(
        &self,
        object_id: u64,
        username: &str,
        payload: &[u8],
        policy: &RetryPolicy,
    ) -> RpcResult<RpcMessage> {
        self.client.call_resilient(
            self.request(object_id, username, payload),
            self.target(),
            policy,
        )
    }

    /// Starts a call without waiting.
    pub fn send(
        &self,
        object_id: u64,
        username: &str,
        payload: &[u8],
    ) -> RpcResult<adn_rpc::runtime::PendingCall> {
        self.client
            .send_call(self.request(object_id, username, payload), self.target())
    }

    /// The logical destination (first replica; ROUTE elements re-balance).
    pub fn target(&self) -> u64 {
        self.replica_endpoints[0]
    }

    /// The underlying client.
    pub fn client(&self) -> &Arc<RpcClient> {
        &self.client
    }

    /// The cluster store (apply new configs, add replicas, ...).
    pub fn store(&self) -> &ClusterStore {
        &self.store
    }

    /// The controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The fabric (for advanced reconfiguration drills).
    pub fn net(&self) -> &InProcNetwork {
        &self.net
    }

    /// The chaos link, when the world was started with one.
    ///
    /// Note: for reading fault counters, prefer
    /// [`AdnWorld::telemetry_counters`] (the registry re-exports them as
    /// `chaos.*`); this getter remains for configuring policies at runtime.
    pub fn chaos(&self) -> Option<&Arc<ChaosLink>> {
        self.chaos.as_ref()
    }

    /// All re-exported counters from the telemetry registry, sorted by
    /// name: `chaos.*` fault-injection stats, `client.*` resilience stats
    /// (retries, breaker, fail-open), and `server.<addr>.*` dedup stats.
    pub fn telemetry_counters(&self) -> Vec<(String, u64)> {
        self.controller.registry().snapshot().counters
    }

    /// Per-object-id server side-effect counts (requires
    /// `track_effects`). At-most-once execution means every entry is 1.
    pub fn effect_counts(&self) -> HashMap<u64, u64> {
        self.effects
            .as_ref()
            .map(|e| e.lock().clone())
            .unwrap_or_default()
    }

    /// Stats snapshots of every replica server, in endpoint order.
    ///
    /// Note: the same numbers are re-exported through the telemetry
    /// registry as `server.<addr>.*` counters — prefer
    /// [`AdnWorld::telemetry_counters`] when reading them alongside other
    /// metrics; this getter remains for typed access.
    pub fn server_stats(&self) -> Vec<ServerStatsSnapshot> {
        self.servers.iter().map(|s| s.stats()).collect()
    }

    /// Current placement description.
    pub fn describe(&self) -> String {
        self.controller
            .describe_app("app")
            .unwrap_or_else(|| "<no deployment>".into())
    }

    /// Closed-loop driver: keeps `concurrency` calls outstanding from one
    /// thread for `duration` (the paper's workload: "128 concurrent RPC
    /// requests using a single thread").
    pub fn run_closed_loop(
        &self,
        concurrency: usize,
        duration: Duration,
        payload: &[u8],
        users: &[&str],
    ) -> LoopStats {
        run_closed_loop(
            |i| {
                let user = users[(i % users.len() as u64) as usize];
                self.send(i, user, payload)
                    .map(|p| Box::new(move |t: Duration| p.wait(t)) as WaitFn)
            },
            concurrency,
            duration,
        )
    }

    /// Sequential latency sampler: `n` calls, returning per-call wall time.
    pub fn sample_latency(&self, n: usize, payload: &[u8], user: &str) -> Vec<Duration> {
        (0..n)
            .map(|i| {
                let start = Instant::now();
                let _ = self.call(i as u64, user, payload);
                start.elapsed()
            })
            .collect()
    }
}

type WaitFn = Box<dyn FnOnce(Duration) -> RpcResult<RpcMessage>>;

/// Shared closed-loop implementation: one thread, `concurrency` outstanding.
fn run_closed_loop(
    mut send: impl FnMut(u64) -> RpcResult<WaitFn>,
    concurrency: usize,
    duration: Duration,
) -> LoopStats {
    let mut stats = LoopStats::default();
    let deadline = Instant::now() + duration;
    let mut window: std::collections::VecDeque<WaitFn> = std::collections::VecDeque::new();
    let mut seq = 0u64;

    // Fill the window.
    for _ in 0..concurrency {
        match send(seq) {
            Ok(w) => window.push_back(w),
            Err(_) => stats.errors += 1,
        }
        seq += 1;
    }
    while Instant::now() < deadline {
        let Some(wait) = window.pop_front() else {
            break;
        };
        match wait(Duration::from_secs(10)) {
            Ok(_) => stats.completed += 1,
            Err(RpcError::Aborted { .. }) => stats.aborted += 1,
            Err(_) => stats.errors += 1,
        }
        match send(seq) {
            Ok(w) => window.push_back(w),
            Err(_) => stats.errors += 1,
        }
        seq += 1;
    }
    // Drain the window.
    for wait in window {
        match wait(Duration::from_secs(10)) {
            Ok(_) => stats.completed += 1,
            Err(RpcError::Aborted { .. }) => stats.aborted += 1,
            Err(_) => stats.errors += 1,
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// The mesh (baseline) world
// ---------------------------------------------------------------------------

/// Which of the paper's three policies run in the client sidecar.
#[derive(Debug, Clone, Copy)]
pub struct MeshPolicies {
    pub logging: bool,
    pub acl: bool,
    /// Fault probability (0 disables the filter entirely).
    pub fault_prob: f64,
}

impl MeshPolicies {
    /// The full evaluation chain.
    pub fn all(fault_prob: f64) -> Self {
        Self {
            logging: true,
            acl: true,
            fault_prob,
        }
    }
}

/// The gRPC + sidecars baseline world (Figure 1 topology).
pub struct MeshWorld {
    client: Arc<MeshClient>,
    service: Arc<ServiceSchema>,
    client_sidecar: SidecarHandle,
    server_sidecar: SidecarHandle,
    _server: MeshServer,
}

impl MeshWorld {
    /// Starts the baseline: client(1) → sidecar(11) → sidecar(12) →
    /// server(2), filters per `policies` in the client sidecar.
    pub fn start(policies: MeshPolicies, seed: u64) -> Self {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let service = object_store_service();

        let server_frames = net.attach(2);
        let svc = service.clone();
        let server = MeshServer::spawn(
            2,
            12,
            link.clone(),
            server_frames,
            service.clone(),
            Box::new(move |req| {
                let m = svc.method_by_id(req.method_id).expect("method");
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("ok", Value::Bool(true));
                if let Some(p) = req.get("payload") {
                    resp.set("payload", p.clone());
                }
                resp
            }),
        );

        let mut filters: Vec<Box<dyn MeshFilter>> = Vec::new();
        if policies.logging {
            filters.push(Box::new(AccessLogFilter::new()));
        }
        if policies.acl {
            filters.push(Box::new(AclFilter::with_default_table(2)));
        }
        if policies.fault_prob > 0.0 {
            filters.push(Box::new(FaultFilter::new(policies.fault_prob, seed)));
        }

        let cs_frames = net.attach(11);
        let client_sidecar = spawn_sidecar(
            SidecarConfig {
                addr: 11,
                filters,
                upstream: Upstream::Fixed(12),
            },
            link.clone(),
            cs_frames,
        );
        let ss_frames = net.attach(12);
        let server_sidecar = spawn_sidecar(
            SidecarConfig {
                addr: 12,
                filters: vec![],
                upstream: Upstream::Dst,
            },
            link.clone(),
            ss_frames,
        );

        let client_frames = net.attach(1);
        let client = MeshClient::new(1, 11, link, client_frames, service.clone());
        Self {
            client,
            service,
            client_sidecar,
            server_sidecar,
            _server: server,
        }
    }

    /// Builds a request message.
    pub fn request(&self, object_id: u64, username: &str, payload: &[u8]) -> RpcMessage {
        let m = self.service.method_by_id(1).expect("method");
        RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", object_id)
            .with("username", username)
            .with("payload", payload.to_vec())
    }

    /// One blocking call.
    pub fn call(&self, object_id: u64, username: &str, payload: &[u8]) -> RpcResult<RpcMessage> {
        self.client
            .call(self.request(object_id, username, payload), 2)
    }

    /// Sidecar stats (client side, server side).
    pub fn sidecar_requests(&self) -> (u64, u64) {
        (
            self.client_sidecar.requests(),
            self.server_sidecar.requests(),
        )
    }

    /// Closed-loop driver matching [`AdnWorld::run_closed_loop`].
    pub fn run_closed_loop(
        &self,
        concurrency: usize,
        duration: Duration,
        payload: &[u8],
        users: &[&str],
    ) -> LoopStats {
        run_closed_loop(
            |i| {
                let user = users[(i % users.len() as u64) as usize];
                self.client
                    .send_call(self.request(i, user, payload), 2)
                    .map(|p| Box::new(move |t: Duration| p.wait(t)) as WaitFn)
            },
            concurrency,
            duration,
        )
    }

    /// Sequential latency sampler.
    pub fn sample_latency(&self, n: usize, payload: &[u8], user: &str) -> Vec<Duration> {
        (0..n)
            .map(|i| {
                let start = Instant::now();
                let _ = self.call(i as u64, user, payload);
                start.elapsed()
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Hand-coded world (Figure 5's third configuration)
// ---------------------------------------------------------------------------

/// An ADN-style world whose chain is the hand-written engines rather than
/// compiled DSL (the "hand-coded mRPC" bar of Figure 5). Built without a
/// controller: the chain is installed directly into the client library.
pub struct HandcodedWorld {
    client: Arc<RpcClient>,
    service: Arc<ServiceSchema>,
    _server: ServerHandle,
}

impl HandcodedWorld {
    /// Starts the world with Logging → ACL → Fault hand-coded engines.
    pub fn start(fault_prob: f64, seed: u64) -> Self {
        let (request_schema, _) = object_store_schemas();
        Self::start_with(adn_elements::handcoded::paper_eval_chain_handcoded(
            &request_schema,
            fault_prob,
            seed,
        ))
    }

    /// Starts the world with an arbitrary client-side engine chain.
    pub fn start_with(engines: Vec<Box<dyn adn_rpc::engine::Engine>>) -> Self {
        let service = object_store_service();
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());

        let server_frames = net.attach(200);
        let svc = service.clone();
        let server = spawn_server(
            ServerConfig {
                addr: 200,
                service: service.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            server_frames,
            Box::new(move |req| {
                let m = svc.method_by_id(req.method_id).expect("method");
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("ok", Value::Bool(true));
                if let Some(p) = req.get("payload") {
                    resp.set("payload", p.clone());
                }
                resp
            }),
        );

        let chain = EngineChain::from_engines(engines);
        let client_frames = net.attach(100);
        let client = RpcClient::new(100, link, client_frames, service.clone(), chain);
        Self {
            client,
            service,
            _server: server,
        }
    }

    /// Builds a request.
    pub fn request(&self, object_id: u64, username: &str, payload: &[u8]) -> RpcMessage {
        let m = self.service.method_by_id(1).expect("method");
        RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", object_id)
            .with("username", username)
            .with("payload", payload.to_vec())
    }

    /// One blocking call.
    pub fn call(&self, object_id: u64, username: &str, payload: &[u8]) -> RpcResult<RpcMessage> {
        self.client
            .call(self.request(object_id, username, payload), 200)
    }

    /// Closed-loop driver.
    pub fn run_closed_loop(
        &self,
        concurrency: usize,
        duration: Duration,
        payload: &[u8],
        users: &[&str],
    ) -> LoopStats {
        run_closed_loop(
            |i| {
                let user = users[(i % users.len() as u64) as usize];
                self.client
                    .send_call(self.request(i, user, payload), 200)
                    .map(|p| Box::new(move |t: Duration| p.wait(t)) as WaitFn)
            },
            concurrency,
            duration,
        )
    }

    /// Sequential latency sampler.
    pub fn sample_latency(&self, n: usize, payload: &[u8], user: &str) -> Vec<Duration> {
        (0..n)
            .map(|i| {
                let start = Instant::now();
                let _ = self.call(i as u64, user, payload);
                start.elapsed()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adn_world_runs_the_paper_chain() {
        let world = AdnWorld::start(WorldConfig::paper_eval_chain(0.0)).unwrap();
        let resp = world.call(1, "alice", b"hello").unwrap();
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
        let err = world.call(2, "bob", b"hello").unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
    }

    #[test]
    fn mesh_world_matches_functionally() {
        let mesh = MeshWorld::start(MeshPolicies::all(0.0), 1);
        let resp = mesh.call(1, "alice", b"hello").unwrap();
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
        let err = mesh.call(2, "bob", b"hello").unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
        let (cs, ss) = mesh.sidecar_requests();
        assert_eq!(cs, 2);
        assert_eq!(ss, 1, "denied request never reaches the server side");
    }

    #[test]
    fn handcoded_world_matches_functionally() {
        let world = HandcodedWorld::start(0.0, 1);
        assert!(world.call(1, "alice", b"hello").is_ok());
        assert!(matches!(
            world.call(2, "bob", b"hello").unwrap_err(),
            RpcError::Aborted { code: 7, .. }
        ));
    }

    #[test]
    fn closed_loop_counts_add_up() {
        let world = AdnWorld::start(WorldConfig::paper_eval_chain(0.1)).unwrap();
        let stats =
            world.run_closed_loop(32, Duration::from_millis(300), b"x", &["alice", "carol"]);
        assert!(stats.completed > 0, "{stats:?}");
        assert!(stats.aborted > 0, "fault injection should fire: {stats:?}");
        assert_eq!(stats.errors, 0, "{stats:?}");
    }

    #[test]
    fn world_reconfigures_via_store() {
        let world = AdnWorld::start(WorldConfig::of_elements(&["Acl"])).unwrap();
        assert!(world.call(1, "bob", b"x").is_err());
        // Swap in a pass-through chain.
        world.store().apply_config(AdnConfig {
            app: "app".into(),
            src_service: "frontend".into(),
            dst_service: "storage".into(),
            chain: WorldConfig::of_elements(&["Logging"]).chain,
            seed: 0,
        });
        world.sync().unwrap();
        assert!(world.call(1, "bob", b"x").is_ok());
    }

    #[test]
    fn latency_sampler_returns_samples() {
        let world = AdnWorld::start(WorldConfig::of_elements(&["Logging"])).unwrap();
        let samples = world.sample_latency(10, b"x", "alice");
        assert_eq!(samples.len(), 10);
        assert!(samples.iter().all(|d| *d > Duration::ZERO));
    }
}
