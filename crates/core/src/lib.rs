//! # adn — Application Defined Networks
//!
//! A from-scratch implementation of *Application Defined Networks*
//! (HotNets '23): developers specify an application's network functionality
//! as a chain of elements in a SQL-like DSL; a compiler and runtime
//! controller generate a custom distributed implementation across the
//! available software and hardware processors.
//!
//! ## Crate map
//!
//! | layer | crate | what it is |
//! |---|---|---|
//! | spec | [`adn_dsl`] | the element DSL: parser, typechecker |
//! | compiler | [`adn_ir`] | IR, analyses, optimization passes |
//! | backends | [`adn_backend`] | native engines, Rust codegen, eBPF-sim, P4-sim |
//! | elements | [`adn_elements`] | standard element library (+ hand-coded twins) |
//! | rpc | [`adn_rpc`] | mRPC-style managed RPC runtime + flat-id fabric |
//! | data plane | [`adn_dataplane`] | processors, scale-out router, hop codec |
//! | cluster | [`adn_cluster`] | simulated cluster manager + AdnConfig CRD |
//! | control | [`adn_controller`] | placement, deployment, live reconfiguration |
//! | telemetry | [`adn_telemetry`] | metrics, in-band tracing, cluster view |
//! | baseline | [`adn_mesh`] | gRPC + Envoy-style sidecar mesh for comparison |
//!
//! ## Quickstart
//!
//! ```
//! use adn::harness::{AdnWorld, WorldConfig};
//!
//! // The paper's evaluation chain: Logging → ACL → Fault injection.
//! let world = AdnWorld::start(WorldConfig::paper_eval_chain(0.02)).unwrap();
//! let resp = world.call(1, "alice", b"hello").unwrap();
//! assert!(resp.get("ok").is_some());
//! // bob only has read permission: the ACL element rejects him.
//! assert!(world.call(2, "bob", b"hello").is_err());
//! ```

pub mod harness;

pub use adn_backend as backend;
pub use adn_cluster as cluster;
pub use adn_controller as controller;
pub use adn_dataplane as dataplane;
pub use adn_dsl as dsl;
pub use adn_elements as elements;
pub use adn_ir as ir;
pub use adn_mesh as mesh;
pub use adn_rpc as rpc;
pub use adn_telemetry as telemetry;
pub use adn_wire as wire;

/// Library version.
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}
