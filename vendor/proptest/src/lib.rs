//! Minimal in-tree stand-in for `proptest` so the workspace builds and tests
//! without network access.
//!
//! Generation-only: strategies produce deterministic pseudo-random values
//! from a per-test seed; there is no shrinking. The supported surface is the
//! slice the workspace uses — `proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `Just`, `any`, ranges, tuple strategies, `prop_map`,
//! `prop_recursive`, `collection::{vec, btree_map}`, `option::of`, and
//! simple character-class/`.`-with-`{m,n}` string regexes.

pub mod test_runner {
    /// Runner configuration (only `cases` is meaningful here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Explicit test-case failure (`prop_assert*` panics instead, but test
    /// bodies may `return Err(...)` or `return Ok(())` early).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        Reject(String),
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(reason: impl Into<String>) -> Self {
            Self::Reject(reason.into())
        }

        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Builds a bounded-depth recursive strategy: `f` maps the strategy
        /// for depth `d` to one for depth `d + 1`; each level falls back to
        /// the leaf strategy half the time so all depths appear.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = f(current).boxed();
                let fallback = leaf.clone();
                current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.next_u64() & 1 == 0 {
                        fallback.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                }));
            }
            current
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union over same-valued strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Self { arms, total_weight }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            self.arms
                .last()
                .expect("prop_oneof! requires at least one arm")
                .1
                .generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).saturating_sub(self.start as u64).max(1);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as u64)
                        .saturating_sub(*self.start() as u64)
                        .saturating_add(1)
                        .max(1);
                    self.start() + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = ((*self.end() as i128 - *self.start() as i128) + 1).max(1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String-literal strategies: a small regex subset (char classes, `.`,
    /// literals, each optionally quantified with `{m,n}`/`{n}`/`*`/`+`/`?`).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate_from_regex(self, rng)
        }
    }
}

pub mod string {
    use super::test_runner::TestRng;

    enum Atom {
        Class(Vec<(char, char)>),
        AnyPrintable,
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse_pieces(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Atom::AnyPrintable
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().unwrap_or('\\');
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .expect("unterminated {..} quantifier");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u64).saturating_sub(*lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for (lo, hi) in ranges {
                    let span = (*hi as u64).saturating_sub(*lo as u64) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                    }
                    pick -= span;
                }
                ranges.first().map(|(lo, _)| *lo).unwrap_or('a')
            }
            Atom::AnyPrintable => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' '),
            Atom::Literal(c) => *c,
        }
    }

    pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse_pieces(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (stand-in for `Arbitrary`).
    pub trait ArbitraryValue: Sized {
        fn sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn sample(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn sample(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn sample(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn sample(rng: &mut TestRng) -> Self {
            // Finite values across several magnitudes (no NaN/inf: generated
            // data round-trips through equality assertions).
            match rng.below(4) {
                0 => 0.0,
                1 => rng.unit_f64(),
                2 => (rng.next_u64() % 1_000_000) as f64 / 1000.0,
                _ => -((rng.next_u64() % 1_000_000) as f64 / 1000.0),
            }
        }
    }

    impl ArbitraryValue for char {
        fn sample(rng: &mut TestRng) -> Self {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                min: r.start,
                max: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// Generates `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeMap`s with entry counts in `size` (dedup by key may
    /// produce fewer entries, as with real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = self.size.sample(rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config = $cfg;
                let __strategies = ($($strat,)+);
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    // The body runs in a Result-returning closure so `return
                    // Ok(())` and `prop_assume!` can skip a case early.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest case failed: {e}");
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn regex_class_strategy(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8), (0u8..4).prop_map(|x| x + 10)]) {
            prop_assert!(v == 1 || v == 2 || (10..14).contains(&v));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn recursive_strategy_bounds_depth() {
        let strat = (0u64..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::for_test("recursive");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3);
            if matches!(t, Tree::Node(..)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }

    #[test]
    fn deterministic_per_test_name() {
        let strat = crate::collection::vec(any::<u64>(), 0..8);
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..32 {
            assert_eq!(
                crate::strategy::Strategy::generate(&strat, &mut a),
                crate::strategy::Strategy::generate(&strat, &mut b)
            );
        }
    }
}
