//! Minimal in-tree stand-in for `serde_json` so the workspace builds without
//! network access: a JSON value tree, a recursive-descent parser, compact and
//! pretty printers, and bridges to the serde shim's `Content` data model.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Content, DeError, Deserialize, Serialize};

/// JSON object representation (sorted keys — deterministic output).
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

/// A JSON number: u64, i64, or finite f64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    /// Finite floats only, matching serde_json.
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number::F64(v))
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(*v),
            Number::I64(v) => u64::try_from(*v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::I64(v) => Some(*v),
            Number::U64(v) => i64::try_from(*v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::U64(v) => Some(*v as f64),
            Number::I64(v) => Some(*v as f64),
            Number::F64(v) => Some(*v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty => $variant:ident as $as:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Self {
                Number::$variant(v as $as)
            }
        }

        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::from(v))
            }
        }
    )*};
}

impl_value_from_int! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Number::from_f64(v)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from a JSON-like literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        let mut object = $crate::Map::new();
        $( object.insert(String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message())
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(|v| v.to_content()).collect()),
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::Number(Number::U64(*v)),
            Content::I64(v) => Value::Number(Number::I64(*v)),
            Content::F64(v) => Value::Number(Number::F64(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::from_content)
                    .collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), Value::from_content(v)?)))
                    .collect::<Result<_, DeError>>()?,
            ),
        })
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content())?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content())?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(Value::from_content(&value.to_content())?)
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_content(&value.to_content())?)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_content(&value.to_content())?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of JSON input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(Error::new("unterminated string"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U64(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Number(Number::I64(v)));
        }
    }
    text.parse::<f64>()
        .ok()
        .and_then(Number::from_f64)
        .map(Value::Number)
        .ok_or_else(|| Error::new(format!("invalid number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let src = r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": null, "d": true}"#;
        let v: Value = from_str(src).unwrap();
        let printed = to_string(&v).unwrap();
        let back: Value = from_str(&printed).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(7).as_u64(), Some(7));
        assert_eq!(json!(0.5).as_f64(), Some(0.5));
        assert_eq!(json!([1, 2]).as_array().unwrap().len(), 2);
        assert_eq!(json!({"k": 1}).get("k").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn pretty_output_contains_newlines() {
        let v = json!({"chain": [1, 2]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert!(s.contains("\"chain\""));
    }
}
