//! Minimal in-tree stand-in for `rand` so the workspace builds without
//! network access. Provides a deterministic `StdRng` (splitmix64 core) and
//! the small slice of the `Rng`/`SeedableRng` API the workspace uses.

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from raw bits (stand-in for `Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling API.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform integer in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator; good enough statistical quality
    /// for fault injection and load spreading, and fully reproducible.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
