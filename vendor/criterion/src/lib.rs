//! Minimal in-tree stand-in for `criterion` so the workspace's benches build
//! and run without network access. Implements the measurement loop (warmup +
//! timed samples, median/mean reporting to stdout) without criterion's
//! statistics, plotting, or CLI machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput for a benchmark, echoed in the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Batch sizing for `iter_batched`; the shim re-runs setup per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_benchmark(&id.into(), sample_size, measurement_time, None, f);
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &id,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    let deadline = Instant::now() + measurement_time;
    for _ in 0..sample_size {
        f(&mut bencher);
        if Instant::now() >= deadline {
            break;
        }
    }
    let mut samples = std::mem::take(&mut bencher.samples);
    if samples.is_empty() {
        println!("{id}: no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    let per_iter = Duration::from_nanos(median as u64);
    match throughput {
        Some(Throughput::Elements(n)) if median > 0 => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!(
                "{id}: median {per_iter:?}/iter, mean {:?}/iter, {rate:.0} elem/s",
                Duration::from_nanos(mean as u64)
            );
        }
        _ => println!(
            "{id}: median {per_iter:?}/iter, mean {:?}/iter ({} samples)",
            Duration::from_nanos(mean as u64),
            samples.len()
        ),
    }
}

/// Measures closures; each `iter`/`iter_batched` call records one sample.
pub struct Bencher {
    samples: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed().as_nanos());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed().as_nanos());
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
