//! Minimal `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! Parses the item with a hand-written `TokenStream` walker (no syn/quote in
//! an offline build) and supports exactly the shapes the workspace uses:
//! named-field structs, tuple structs, and enums with unit variants, plus
//! the `#[serde(default)]` field attribute. `skip_serializing_if` is parsed
//! and ignored (fields always serialize; `default` covers the read side).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    default: bool,
}

/// The shapes we can derive for.
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::new();
            body.push_str("let mut m: Vec<(String, ::serde::Content)> = Vec::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "m.push((String::from(\"{n}\"), ::serde::Serialize::to_content(&self.{n})));\n",
                    n = f.name
                ));
            }
            body.push_str("::serde::Content::Map(m)");
            impl_block(
                name,
                "Serialize",
                &format!("fn to_content(&self) -> ::serde::Content {{ {body} }}"),
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_content(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
            };
            impl_block(
                name,
                "Serialize",
                &format!("fn to_content(&self) -> ::serde::Content {{ {body} }}"),
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Content::Str(String::from(\"{v}\")),"))
                .collect();
            impl_block(
                name,
                "Serialize",
                &format!(
                    "fn to_content(&self) -> ::serde::Content {{ match self {{ {} }} }}",
                    arms.join("\n")
                ),
            )
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let missing = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return Err(::serde::DeError::custom(\"missing field `{}`\"))",
                        f.name
                    )
                };
                inits.push_str(&format!(
                    "{n}: match c.field(\"{n}\") {{ \
                       Some(v) => ::serde::Deserialize::from_content(v)?, \
                       None => {missing}, \
                     }},\n",
                    n = f.name
                ));
            }
            impl_block(
                name,
                "Deserialize",
                &format!(
                    "fn from_content(c: &::serde::Content) -> Result<Self, ::serde::DeError> {{ \
                   if c.as_map().is_none() {{ \
                     return Err(::serde::DeError::custom(\"expected map for struct {name}\")); \
                   }} \
                   Ok(Self {{ {inits} }}) \
                 }}"
                ),
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "Ok(Self(::serde::Deserialize::from_content(c)?))".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = match c {{ \
                       ::serde::Content::Seq(items) if items.len() == {arity} => items, \
                       _ => return Err(::serde::DeError::custom(\"expected {arity}-element array\")), \
                     }}; \
                     Ok(Self({}))",
                    items.join(", ")
                )
            };
            impl_block(name, "Deserialize", &format!(
                "fn from_content(c: &::serde::Content) -> Result<Self, ::serde::DeError> {{ {body} }}"
            ))
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            impl_block(
                name,
                "Deserialize",
                &format!(
                    "fn from_content(c: &::serde::Content) -> Result<Self, ::serde::DeError> {{ \
                   match c {{ \
                     ::serde::Content::Str(s) => match s.as_str() {{ \
                       {} \
                       other => Err(::serde::DeError::custom(format!( \
                         \"unknown {name} variant {{other:?}}\"))), \
                     }}, \
                     _ => Err(::serde::DeError::custom(\"expected string variant\")), \
                   }} \
                 }}",
                    arms.join("\n")
                ),
            )
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

fn impl_block(name: &str, trait_name: &str, body: &str) -> String {
    format!("impl ::serde::{trait_name} for {name} {{ {body} }}")
}

/// Walks the item tokens: leading attributes, visibility, `struct`/`enum`,
/// name, then the field/variant group.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic items ({name})");
    }

    match kind.as_str() {
        "struct" => match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            },
            other => panic!("serde_derive: unexpected struct body {other}"),
        },
        "enum" => match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Item::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream()),
            },
            other => panic!("serde_derive: unexpected enum body {other}"),
        },
        other => panic!("serde_derive: cannot derive for {other} items"),
    }
}

/// Skips `#[...]` attribute pairs starting at `*i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 2; // '#' plus the bracket group
    }
}

/// Skips `pub`, `pub(crate)`, etc. starting at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Scans the attributes before a field and reports whether `#[serde(default)]`
/// (possibly alongside other serde options) is among them; leaves `*i` on the
/// first non-attribute token.
fn scan_field_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let mut angle = 0i32;
                    for t in args.stream() {
                        match &t {
                            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                            TokenTree::Ident(id) if angle == 0 && id.to_string() == "default" => {
                                default = true
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    default
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = scan_field_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected ':' after field {name}"
        );
        i += 1;
        // Consume the type: everything up to a comma outside angle brackets.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts tuple-struct fields: comma-separated segments outside angle brackets.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not start a new field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        scan_field_attrs(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive shim supports unit enum variants only ({name} has data)")
            }
            Some(other) => panic!("serde_derive: unexpected token after variant: {other}"),
        }
        variants.push(name);
    }
    variants
}
