//! Minimal in-tree stand-in for `parking_lot` so the workspace builds
//! without network access. Wraps the std primitives and papers over lock
//! poisoning (parking_lot locks are not poisoned).

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with the parking_lot API: `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

/// A reader-writer lock with the parking_lot API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}
