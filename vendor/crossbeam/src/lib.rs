//! Minimal in-tree stand-in for `crossbeam` so the workspace builds without
//! network access. Only `crossbeam::channel` is provided: a multi-producer
//! multi-consumer channel built on a mutex + condvars, with the same
//! disconnect semantics the workspace relies on (receive fails once all
//! senders are gone and the queue drains; send fails once all receivers
//! are gone).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a bounded channel; `send` blocks while `cap` messages queue.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // A zero-capacity rendezvous channel degenerates to capacity 1 here;
        // the workspace only uses capacities >= 1.
        new_channel(Some(cap.max(1)))
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.0.capacity {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.0.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails when full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.0.capacity {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            inner.queue.push_back(msg);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.not_empty.wait(inner).unwrap();
            }
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The channel is disconnected (all receivers dropped).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Non-blocking send failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    /// The channel is empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(1u8).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1u32).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn mpmc_clone_both_ends() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(9u8).unwrap();
            assert_eq!(rx2.recv().unwrap(), 9);
            drop(tx);
            drop(tx2);
            assert!(rx.recv().is_err());
        }
    }
}
