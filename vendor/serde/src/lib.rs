//! Minimal in-tree stand-in for `serde` so the workspace builds without
//! network access.
//!
//! The data model is a single self-describing tree, [`Content`]; `Serialize`
//! lowers a value into it and `Deserialize` rebuilds a value from it. The
//! companion `serde_derive` shim generates impls for the plain structs and
//! unit enums the workspace defines, honoring `#[serde(default)]`; the
//! `serde_json` shim maps `Content` to and from JSON text.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized form of a value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a field in a map by key.
    pub fn field(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }

    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Lowers a value to [`Content`].
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Rebuilds a value from [`Content`].
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom(format!("{v} out of i64 range")))?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let items = match content {
                    Content::Seq(items) => items,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected tuple array, got {other:?}"
                        )))
                    }
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-element tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
