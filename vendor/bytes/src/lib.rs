//! Minimal in-tree stand-in for the `bytes` crate so the workspace builds
//! without network access. Only the small surface the workspace could need
//! is provided; the crate is currently declared but unused.

/// A cheaply clonable contiguous byte buffer (here: a plain `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// A growable byte buffer (here: a plain `Vec<u8>`).
pub type BytesMut = Vec<u8>;
