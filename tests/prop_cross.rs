//! Cross-crate property tests: the three execution backends (software
//! engine, eBPF simulator, P4 simulator) implement the same semantics for
//! elements they all accept, and the minimal-header hop codec preserves
//! message contents under arbitrary intermediate rewrites.

use adn::harness::{object_store_schemas, object_store_service};
use adn_backend::adapters::{EbpfEngine, SwitchEngine};
use adn_backend::native::{compile_element, CompileOpts};
use adn_backend::{ebpf, p4};
use adn_rpc::engine::{Engine, Verdict};
use adn_rpc::message::RpcMessage;
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::{Value, ValueType};
use proptest::prelude::*;
use std::sync::Arc;

fn numeric_schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
    (
        Arc::new(
            RpcSchema::builder()
                .field("user_id", ValueType::U64)
                .field("object_id", ValueType::U64)
                .build()
                .unwrap(),
        ),
        Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .build()
                .unwrap(),
        ),
    )
}

fn lower_numeric(src: &str) -> adn_ir::ElementIr {
    let (req, resp) = numeric_schemas();
    let checked = adn_dsl::compile_frontend(src, &req, &resp).unwrap();
    adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A u64-keyed ACL behaves identically on software, eBPF, and P4 for
    /// arbitrary table contents and lookups.
    #[test]
    fn three_backends_agree_on_numeric_acl(
        allowed in proptest::collection::btree_map(0u64..64, any::<bool>(), 1..16),
        queries in proptest::collection::vec(0u64..80, 1..32),
    ) {
        let rows: String = allowed
            .iter()
            .map(|(k, v)| format!("({k}, {})", *v as u64))
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!(
            "element NumAcl() {{
                state acl(user_id: u64 key, ok_flag: u64) init {{ {rows} }};
                on request {{
                    SELECT * FROM input JOIN acl ON input.user_id == acl.user_id
                    WHERE acl.ok_flag == 1
                    ELSE ABORT(7, 'denied');
                }}
            }}"
        );
        let element = lower_numeric(&src);
        let (req, resp) = numeric_schemas();
        let req_types: Vec<ValueType> = req.fields().iter().map(|f| f.ty).collect();
        let resp_types: Vec<ValueType> = resp.fields().iter().map(|f| f.ty).collect();

        let mut native = compile_element(&element, &CompileOpts::default());
        let mut ebpf_engine = EbpfEngine::new(
            ebpf::compile_for_schema(&element, &req_types, &resp_types).unwrap(),
            0,
            vec![],
        );
        let mut switch_engine = SwitchEngine::new(p4::compile(&element).unwrap(), vec![]);

        for user in queries {
            let make = || {
                RpcMessage::request(1, 1, req.clone())
                    .with("user_id", user)
                    .with("object_id", 5u64)
            };
            let mut m1 = make();
            let mut m2 = make();
            let mut m3 = make();
            let v_native = native.process(&mut m1);
            let v_ebpf = ebpf_engine.process(&mut m2);
            let v_switch = switch_engine.process(&mut m3);
            // Compare verdict *categories* (abort messages differ by
            // platform: eBPF and P4 carry codes only).
            let cat = |v: &Verdict| match v {
                Verdict::Forward => 0,
                Verdict::Drop => 1,
                Verdict::Abort { code, .. } => 2 + *code as i64,
                // No compiled element sheds today; a distinct category
                // keeps the cross-backend comparison honest if one does.
                Verdict::Shed => -1,
            };
            prop_assert_eq!(cat(&v_native), cat(&v_ebpf), "native vs ebpf for user {}", user);
            prop_assert_eq!(cat(&v_native), cat(&v_switch), "native vs p4 for user {}", user);
        }
    }

    /// Load balancing picks the same replica on all three backends.
    #[test]
    fn three_backends_agree_on_routing(
        keys in proptest::collection::vec(any::<u64>(), 1..32),
        replica_count in 1usize..6,
    ) {
        let element = lower_numeric(
            "element Lb() { on request { ROUTE input.object_id; SELECT * FROM input; } }",
        );
        let (req, resp) = numeric_schemas();
        let req_types: Vec<ValueType> = req.fields().iter().map(|f| f.ty).collect();
        let resp_types: Vec<ValueType> = resp.fields().iter().map(|f| f.ty).collect();
        let replicas: Vec<u64> = (0..replica_count as u64).map(|i| 1000 + i).collect();

        let mut native = compile_element(
            &element,
            &CompileOpts {
                seed: 0,
                replicas: replicas.clone(),
                ..Default::default()
            },
        );
        let mut ebpf_engine = EbpfEngine::new(
            ebpf::compile_for_schema(&element, &req_types, &resp_types).unwrap(),
            0,
            replicas.clone(),
        );
        let mut switch_engine =
            SwitchEngine::new(p4::compile(&element).unwrap(), replicas.clone());

        for key in keys {
            let make = || {
                let mut m = RpcMessage::request(1, 1, req.clone())
                    .with("user_id", 1u64)
                    .with("object_id", key);
                m.dst = 1;
                m
            };
            let mut m1 = make();
            let mut m2 = make();
            let mut m3 = make();
            native.process(&mut m1);
            ebpf_engine.process(&mut m2);
            switch_engine.process(&mut m3);
            prop_assert_eq!(m1.dst, m2.dst, "native vs ebpf replica for key {}", key);
            prop_assert_eq!(m1.dst, m3.dst, "native vs p4 replica for key {}", key);
        }
    }

    /// Hop-codec roundtrip with arbitrary header rewrites at an
    /// intermediate hop: the finished message equals the original with
    /// exactly the rewritten fields changed.
    #[test]
    fn hop_codec_merges_intermediate_rewrites(
        object_id in any::<u64>(),
        username in "[a-z]{1,12}",
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        new_object_id in any::<u64>(),
        rewrite in any::<bool>(),
    ) {
        let service = object_store_service();
        let (_req, _) = object_store_schemas();
        let m = service.method_by_id(1).unwrap();
        let mut msg = RpcMessage::request(9, 1, m.request.clone())
            .with("object_id", object_id)
            .with("username", username.as_str())
            .with("payload", payload.clone());
        msg.dst = 200;

        let mut layout = adn_wire::header::HeaderLayout::new();
        layout.push(0, "object_id", adn_wire::header::HeaderType::U64);

        let bytes = adn_dataplane::hop::encode_hop(&msg, &layout).unwrap();
        let mut frame = adn_dataplane::hop::decode_hop(&bytes, &layout).unwrap();
        if rewrite {
            frame.header[0] = Value::U64(new_object_id);
        }
        let bytes2 = adn_dataplane::hop::reencode_hop(&frame, &layout).unwrap();
        let frame2 = adn_dataplane::hop::decode_hop(&bytes2, &layout).unwrap();
        let finished = adn_dataplane::hop::finish_hop(&frame2, &layout, &service).unwrap();

        let expected_oid = if rewrite { new_object_id } else { object_id };
        prop_assert_eq!(finished.get("object_id"), Some(&Value::U64(expected_oid)));
        prop_assert_eq!(finished.get("username"), Some(&Value::Str(username)));
        prop_assert_eq!(finished.get("payload"), Some(&Value::Bytes(payload)));
    }

    /// DSL chains survive the full wire trip: encode → decode → process →
    /// encode → decode equals processing the original directly.
    #[test]
    fn wire_roundtrip_commutes_with_processing(
        oid in any::<u64>(),
        user in prop_oneof![Just("alice"), Just("bob"), Just("carol")],
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let service = object_store_service();
        let (req_schema, resp_schema) = object_store_schemas();
        let element = adn_elements::build("Tagger", &[], &req_schema, &resp_schema).unwrap();
        let m = service.method_by_id(1).unwrap();

        let make = || {
            RpcMessage::request(3, 1, m.request.clone())
                .with("object_id", oid)
                .with("username", user)
                .with("payload", payload.clone())
        };

        // Path A: process, then wire-roundtrip.
        let mut engine_a = compile_element(&element, &CompileOpts::default());
        let mut a = make();
        engine_a.process(&mut a);
        let a_bytes = adn_rpc::wire_format::encode_message_to_vec(&a).unwrap();
        let a_final = adn_rpc::wire_format::decode_message_exact(&a_bytes, &service).unwrap();

        // Path B: wire-roundtrip, then process.
        let mut engine_b = compile_element(&element, &CompileOpts::default());
        let b_bytes = adn_rpc::wire_format::encode_message_to_vec(&make()).unwrap();
        let mut b = adn_rpc::wire_format::decode_message_exact(&b_bytes, &service).unwrap();
        engine_b.process(&mut b);

        prop_assert_eq!(a_final.fields, b.fields);
    }
}
