//! Determinism guarantees of the simulation harness: same seed ⇒
//! byte-identical event log (the acceptance criterion for `adn-sim`),
//! prefix stability (the property the shrinker relies on), and a golden
//! event log pinned in-repo so unintended behavior drift shows up as a
//! diff. Regenerate the golden file with `ADN_BLESS=1 cargo test -p
//! adn-sim --test sim_determinism`.

use adn_sim::Scenario;
use std::path::PathBuf;

/// Acceptance criterion: two runs of the same scenario under the same
/// seed produce byte-identical event logs (and thus fingerprints).
#[test]
fn same_seed_produces_byte_identical_event_log() {
    let a = Scenario::everything().run(42);
    let b = Scenario::everything().run(42);
    assert_eq!(a.log_text(), b.log_text());
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.events, b.events);
}

/// Different seeds take different trajectories (chaos rolls, jitter,
/// backoff all come from the seeded RNG).
#[test]
fn different_seeds_diverge() {
    let a = Scenario::chaos().run(1);
    let b = Scenario::chaos().run(2);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

/// A run capped at N events emits exactly the first N events' log lines
/// of the uncapped run — the property that makes shrinking exact.
#[test]
fn truncated_run_is_a_prefix_of_the_full_run() {
    let full = Scenario::chaos().run(9);
    assert!(full.events > 100, "scenario too small: {}", full.events);
    let mut capped_scenario = Scenario::chaos();
    capped_scenario.max_events = full.events / 2;
    let capped = capped_scenario.run(9);
    assert!(capped.truncated);
    assert!(capped.log.len() <= full.log.len());
    assert_eq!(
        capped.log.as_slice(),
        &full.log[..capped.log.len()],
        "capped log must be a byte-identical prefix"
    );
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/sim/canonical.log")
}

/// The smoke scenario's event log is pinned as a golden file: behavior
/// drift in the executor, chaos rolls, node models, or log format shows
/// up as a readable diff. Bless intentional changes with `ADN_BLESS=1`.
#[test]
fn smoke_event_log_matches_golden() {
    let report = Scenario::smoke().run(7);
    assert!(report.passed(), "{:?}", report.violation);
    let got = report.log_text();
    let path = golden_path();
    if std::env::var("ADN_BLESS").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden file {} unreadable ({e}); regenerate with \
             ADN_BLESS=1 cargo test -p adn-sim --test sim_determinism",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "smoke event log drifted from golden; if intentional, bless with \
         ADN_BLESS=1 cargo test -p adn-sim --test sim_determinism"
    );
}
