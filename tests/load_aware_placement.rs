//! The observability plane drives placement: [`LoadAwarePolicy`] reads the
//! live [`ClusterView`] the controller builds from heartbeat load reports.
//! A skewed cluster routes new work to the idle processor, and a
//! queue-depth breach triggers exactly one autoscale shard-out — a second
//! breach inside the cooldown must not flap.
//!
//! The whole world runs on a shared [`VirtualClock`]: cooldown windows
//! are entered and exited by explicit `advance` calls, never by wall
//! time, so the tests are deterministic at any machine speed.

use std::sync::Arc;
use std::time::Duration;

use adn::harness::{AdnWorld, WorldConfig};
use adn_cluster::resources::PlacementConstraint;
use adn_cluster::LoadReport;
use adn_controller::runtime::AutoscaleConfig;
use adn_rpc::clock::VirtualClock;
use adn_telemetry::LoadAwarePolicy;

/// One ACL element forced off-app: a single sidecar processor group, the
/// autoscale target — running entirely on the given virtual clock.
fn world(clock: &Arc<VirtualClock>) -> AdnWorld {
    let mut cfg = WorldConfig::of_elements(&["Acl"]);
    cfg.chain[0].constraints = vec![PlacementConstraint::OffApp];
    cfg.clock = Some(clock.clone());
    AdnWorld::start(cfg).unwrap()
}

fn report(endpoint: u64, processed: u64, queue_depth: u64) -> LoadReport {
    LoadReport {
        endpoint,
        processed,
        rejected: 0,
        utilization: 0.5,
        queue_depth,
        shed: 0,
        expired_drops: 0,
        elements: vec![],
    }
}

#[test]
fn skewed_load_prefers_the_idle_processor() {
    let clock = VirtualClock::shared();
    let w = world(&clock);
    // Two processors heartbeat with skewed congestion signals.
    w.store().report_load(report(777, 100, 50));
    w.store().report_load(report(888, 100, 1));
    w.sync().unwrap();

    // The policy consumes the live view: the idle endpoint wins.
    assert_eq!(
        w.controller().preferred_processor("app", &[777, 888]),
        Some(888)
    );
    assert!(w.controller().view().queue_depth(777) > w.controller().view().queue_depth(888));
}

#[test]
fn queue_breach_scales_out_exactly_once() {
    let clock = VirtualClock::shared();
    let w = world(&clock);
    assert!(w.call(1, "alice", b"x").is_ok());
    let entry = w.controller().processor_stats("app")[0].0;

    let cooldown = Duration::from_secs(60);
    w.controller().enable_autoscale(
        "app",
        AutoscaleConfig {
            policy: LoadAwarePolicy {
                queue_depth_threshold: 2,
                cooldown,
                ..LoadAwarePolicy::default()
            },
            shard_field: 1, // username
            shards: 2,
        },
    );

    // Two congested heartbeats arrive back to back; both breach, but the
    // first scale-out consumes the group and the second must find nothing
    // to scale.
    w.store().report_load(report(entry, 10, 100));
    w.store().report_load(report(entry, 20, 100));
    w.sync().unwrap();
    assert_eq!(w.controller().scaleout_count("app"), 1, "exactly one");

    // A later breach inside the cooldown window must not flap. The clock
    // is virtual: "inside the window" is a fact we set, not a race
    // against the test's own runtime.
    clock.advance(cooldown / 2);
    w.store().report_load(report(entry, 30, 100));
    w.sync().unwrap();
    assert_eq!(w.controller().scaleout_count("app"), 1, "no flapping");

    // And once the cooldown genuinely expires, a breach still finds
    // nothing left to scale: the group was consumed by the shard-out,
    // so the count stays put for the right reason.
    clock.advance(cooldown);
    w.store().report_load(report(entry, 40, 100));
    w.sync().unwrap();
    assert_eq!(
        w.controller().scaleout_count("app"),
        1,
        "group already sharded; expiry must not invent work"
    );

    // Traffic still flows through the shard router that took over the
    // old address — and the chain's policy still screens.
    assert!(w.call(2, "alice", b"x").is_ok());
    assert!(w.call(3, "bob", b"x").is_err(), "ACL enforced on shards");
}
