//! Cross-crate integration tests: the full pipeline (DSL → compiler →
//! controller → data plane → RPC runtime) against the baseline mesh, on
//! the same workloads.

use adn::harness::{AdnWorld, EnvPreset, MeshPolicies, MeshWorld, WorldConfig};
use adn_cluster::resources::{AdnConfig, ElementSpec, NodeId, PlacementConstraint, ReplicaSpec};
use adn_rpc::RpcError;

/// The two systems must agree on the *semantics* of the paper's policy
/// chain: identical allow/deny behaviour per user.
#[test]
fn adn_and_mesh_agree_on_policy_semantics() {
    let adn = AdnWorld::start(WorldConfig::paper_eval_chain(0.0)).unwrap();
    let mesh = MeshWorld::start(MeshPolicies::all(0.0), 3);

    for (oid, user) in [
        (1u64, "alice"),
        (2, "bob"),
        (3, "carol"),
        (4, "dave"),
        (5, "eve"),
        (6, "zed"),
    ] {
        let a = adn.call(oid, user, b"payload");
        let m = mesh.call(oid, user, b"payload");
        match (a, m) {
            (Ok(_), Ok(_)) => {}
            (Err(RpcError::Aborted { code: ca, .. }), Err(RpcError::Aborted { code: cm, .. })) => {
                assert_eq!(ca, cm, "deny codes must agree for {user}");
            }
            (a, m) => panic!("verdicts diverge for {user}: adn={a:?} mesh={m:?}"),
        }
    }
}

/// Fault injection rates converge to the configured probability in both
/// systems (the elements share no code; the distributions must still match).
#[test]
fn fault_rates_match_between_systems() {
    let prob = 0.2;
    let adn = AdnWorld::start(WorldConfig::paper_eval_chain(prob)).unwrap();
    let mesh = MeshWorld::start(MeshPolicies::all(prob), 5);

    let n = 600;
    let mut adn_aborts = 0;
    let mut mesh_aborts = 0;
    for i in 0..n {
        if matches!(
            adn.call(i, "alice", b"x"),
            Err(RpcError::Aborted { code: 3, .. })
        ) {
            adn_aborts += 1;
        }
        if matches!(
            mesh.call(i, "alice", b"x"),
            Err(RpcError::Aborted { code: 3, .. })
        ) {
            mesh_aborts += 1;
        }
    }
    let adn_rate = adn_aborts as f64 / n as f64;
    let mesh_rate = mesh_aborts as f64 / n as f64;
    assert!((adn_rate - prob).abs() < 0.06, "adn rate {adn_rate}");
    assert!((mesh_rate - prob).abs() < 0.06, "mesh rate {mesh_rate}");
}

/// The compression pair survives any placement the solver picks: payloads
/// roundtrip bit-exactly through bare and rich environments.
#[test]
fn compression_roundtrips_across_placements() {
    for env in [EnvPreset::Bare, EnvPreset::Rich] {
        let mut cfg = WorldConfig::of_elements(&["Compress", "Acl", "Decompress"]);
        cfg.env = env;
        cfg.chain[0].constraints = vec![PlacementConstraint::SenderSide];
        cfg.chain[1].constraints = vec![PlacementConstraint::OffApp];
        cfg.chain[2].constraints = vec![PlacementConstraint::ReceiverSide];
        let world = AdnWorld::start(cfg).unwrap();
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let resp = world.call(1, "alice", &payload).unwrap();
        assert_eq!(
            resp.get("payload").and_then(|v| v.as_bytes()),
            Some(&payload[..]),
            "payload must roundtrip under {env:?} ({})",
            world.describe()
        );
    }
}

/// Load balancing reacts to replica arrival: after a scale-up of the
/// destination service, new traffic reaches the new replica.
#[test]
fn replica_arrival_rebalances_traffic() {
    let mut cfg = WorldConfig::of_elements(&["LoadBalancer"]);
    cfg.replicas = 1;
    let world = AdnWorld::start(cfg).unwrap();

    let spread = |world: &AdnWorld| {
        let mut seen = std::collections::HashSet::new();
        for oid in 0..64 {
            // Empty payload → replicas identify themselves.
            let resp = world.call(oid, "alice", b"").unwrap();
            seen.insert(resp.get("payload").unwrap().as_bytes().unwrap().to_vec());
        }
        seen.len()
    };
    assert_eq!(spread(&world), 1);

    // A second replica joins. (The harness only spawned one server; for
    // this test, replica arrival means the store learns about a new
    // endpoint that happens to be served by... a fresh server we spawn on
    // the same fabric.)
    let net = world.net().clone();
    let link: std::sync::Arc<dyn adn_rpc::transport::Link> = std::sync::Arc::new(net.clone());
    let service = adn::harness::object_store_service();
    let frames = net.attach(201);
    let svc = service.clone();
    let _server2 = adn_rpc::runtime::spawn_server(
        adn_rpc::runtime::ServerConfig {
            addr: 201,
            service: service.clone(),
            chain: adn_rpc::engine::EngineChain::new(),
        },
        link,
        frames,
        Box::new(move |req| {
            let m = svc.method_by_id(req.method_id).unwrap();
            let mut resp = adn_rpc::message::RpcMessage::response_to(req, m.response.clone());
            resp.set("ok", adn_rpc::value::Value::Bool(true));
            resp.set(
                "payload",
                adn_rpc::value::Value::Bytes(201u64.to_be_bytes().to_vec()),
            );
            resp
        }),
    );
    world
        .store()
        .add_replica(
            "storage",
            ReplicaSpec {
                node: NodeId(2),
                endpoint: 201,
            },
        )
        .unwrap();
    world.sync().unwrap();
    assert_eq!(spread(&world), 2, "new replica should receive traffic");
}

/// Config updates through the store change behaviour without restarting
/// anything (the paper's ADNConfig watch loop).
#[test]
fn config_update_swaps_the_network() {
    let world = AdnWorld::start(WorldConfig::of_elements(&["Acl"])).unwrap();
    assert!(world.call(1, "bob", b"x").is_err());

    // Push a new program: replace ACL with a firewall blocking object 13.
    world.store().apply_config(AdnConfig {
        app: "app".into(),
        src_service: "frontend".into(),
        dst_service: "storage".into(),
        chain: vec![ElementSpec {
            element: "Firewall".into(),
            source: None,
            args: vec![("blocked".into(), serde_json::json!(13))],
            constraints: vec![],
        }],
        seed: 0,
    });
    world.sync().unwrap();

    assert!(world.call(1, "bob", b"x").is_ok(), "ACL is gone");
    assert!(world.call(13, "bob", b"x").is_err(), "firewall drops 13");
}

/// An inline-source element (not from the catalog) deploys end to end.
#[test]
fn inline_custom_element_deploys() {
    let mut cfg = WorldConfig::of_elements(&[]);
    cfg.chain = vec![ElementSpec {
        element: "OddBlocker".into(),
        source: Some(
            "element OddBlocker() { on request { \
                ABORT(9, 'odd objects forbidden') WHERE input.object_id % 2 == 1; \
                SELECT * FROM input; } }"
                .into(),
        ),
        args: vec![],
        constraints: vec![],
    }];
    let world = AdnWorld::start(cfg).unwrap();
    assert!(world.call(2, "alice", b"x").is_ok());
    match world.call(3, "alice", b"x") {
        Err(RpcError::Aborted { code: 9, message }) => {
            assert!(message.contains("odd"));
        }
        other => panic!("expected abort 9, got {other:?}"),
    }
}

/// The paper's Figure-5 workload shape holds end to end: ADN completes a
/// closed-loop window at least twice as fast as the mesh on this substrate
/// (the measured gap is larger; 2x is the regression floor).
#[test]
fn adn_outperforms_mesh_on_the_paper_workload() {
    use std::time::{Duration, Instant};
    let adn = AdnWorld::start(WorldConfig::paper_eval_chain(0.02)).unwrap();
    let mesh = MeshWorld::start(MeshPolicies::all(0.02), 7);

    let window = Duration::from_millis(500);
    let users = ["alice", "carol"];

    let t0 = Instant::now();
    let adn_stats = adn.run_closed_loop(64, window, b"short payload", &users);
    let adn_elapsed = t0.elapsed();
    let t0 = Instant::now();
    let mesh_stats = mesh.run_closed_loop(64, window, b"short payload", &users);
    let mesh_elapsed = t0.elapsed();

    let adn_rate = adn_stats.total() as f64 / adn_elapsed.as_secs_f64();
    let mesh_rate = mesh_stats.total() as f64 / mesh_elapsed.as_secs_f64();
    assert_eq!(adn_stats.errors, 0);
    assert_eq!(mesh_stats.errors, 0);
    assert!(
        adn_rate > mesh_rate * 2.0,
        "adn {adn_rate:.0} rps vs mesh {mesh_rate:.0} rps"
    );
}
