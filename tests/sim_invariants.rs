//! Whole-cluster invariant tests on the deterministic simulator. These
//! are the sim ports of `tests/chaos_failover.rs` and
//! `tests/reconfig_zero_loss.rs`: the same properties (at-most-once
//! under retransmits, zero loss across reconfiguration, failover
//! liveness, breaker fail-open) checked after *every* event of a
//! seed-swept virtual-time run instead of once at the end of a
//! wall-clock run.
//!
//! Tier-1 sweeps 4 seeds per scenario; set `ADN_SIM_SWEEP=1` (tier-2 /
//! the CI `sim` job) to sweep 64.

use std::time::Duration;

use adn_rpc::chaos::ChaosPolicy;
use adn_rpc::retry::{BreakerPolicy, DegradedMode};
use adn_sim::{shrink, sweep_seeds, Scenario};

fn seed_range() -> std::ops::Range<u64> {
    if std::env::var("ADN_SIM_SWEEP").is_ok() {
        0..64
    } else {
        0..4
    }
}

/// The acceptance sweep: chaos + processor crash/failover + autoscale,
/// with all five invariant checkers armed after every event.
#[test]
fn everything_scenario_sweep_holds_all_invariants() {
    let out = sweep_seeds(&Scenario::everything(), seed_range());
    assert!(
        out.passed(),
        "seed failed — {}",
        out.failure().map(|f| f.replay.clone()).unwrap_or_default()
    );
    assert_eq!(out.seeds_run, seed_range().end);
}

/// The acceptance sweep again, with batched delivery: every processor
/// drains its inbox up to 16 frames at a time, with batch-local
/// duplicate deferral — all five invariants must hold exactly as they
/// do per-frame.
#[test]
fn everything_scenario_sweep_holds_all_invariants_with_batching() {
    let mut s = Scenario::everything();
    s.batch = 16;
    let out = sweep_seeds(&s, seed_range());
    assert!(
        out.passed(),
        "seed failed — {}",
        out.failure().map(|f| f.replay.clone()).unwrap_or_default()
    );
    assert_eq!(out.seeds_run, seed_range().end);
}

/// Strict zero-loss under batching: the reconfig scenario (migration +
/// scale-outs, clean link) with batch=16 — a single timed-out or lost
/// call fails the run, so batching must not drop or double-execute.
#[test]
fn reconfig_stays_zero_loss_with_batching() {
    let mut s = Scenario::reconfig();
    s.batch = 16;
    for seed in seed_range() {
        let r = s.run(seed);
        assert!(r.passed(), "seed {seed}: {:?}", r.violation);
        assert_eq!(r.stats.calls_ok, r.stats.calls_issued, "seed {seed}");
        assert_eq!(r.stats.server_executions, r.stats.calls_ok, "seed {seed}");
    }
}

/// Batching must actually happen (multi-frame drains appear in the log)
/// and stay deterministic (same seed ⇒ identical fingerprint).
#[test]
fn batched_runs_form_real_batches_and_stay_deterministic() {
    let mut s = Scenario::everything();
    s.batch = 16;
    let a = s.run(42);
    assert!(a.passed(), "{:?}", a.violation);
    let multi = a
        .log
        .iter()
        .filter(|l| l.contains(" batch addr=") && !l.ends_with("n=1"))
        .count();
    assert!(multi > 0, "no multi-frame batch ever drained");
    let b = s.run(42);
    assert_eq!(a.log_text(), b.log_text());
    assert_eq!(a.fingerprint(), b.fingerprint());
}

/// Chaos port of `chain_survives_drops_and_processor_kill_exactly_once`:
/// drops, dups, reorders, delays and fault injection, checked per event.
#[test]
fn chaos_scenario_sweep_holds_all_invariants() {
    let out = sweep_seeds(&Scenario::chaos(), seed_range());
    assert!(
        out.passed(),
        "seed failed — {}",
        out.failure().map(|f| f.replay.clone()).unwrap_or_default()
    );
}

/// Reconfig port of `reconfig_zero_loss.rs`: live migration plus three
/// load-triggered scale-outs on a clean link; the strict zero-loss
/// invariant means a single timed-out call fails the run.
#[test]
fn reconfig_scenario_is_zero_loss_through_migration_and_scaleout() {
    for seed in seed_range() {
        let r = Scenario::reconfig().run(seed);
        assert!(r.passed(), "seed {seed}: {:?}", r.violation);
        assert_eq!(r.stats.calls_ok, r.stats.calls_issued, "seed {seed}");
        assert_eq!(r.stats.calls_timed_out, 0, "seed {seed}");
        assert_eq!(r.stats.migrations, 1, "seed {seed}");
        assert!(
            r.stats.scaleouts >= 2,
            "seed {seed}: want repeated scale-outs to exercise the \
             cooldown invariant, got {}",
            r.stats.scaleouts
        );
        // Every completed call executed exactly once at the server.
        assert_eq!(r.stats.server_executions, r.stats.calls_ok, "seed {seed}");
    }
}

/// The everything scenario must actually exercise the machinery it
/// claims to test: a failover, retransmissions, and dedup hits.
#[test]
fn everything_scenario_exercises_failover_and_dedup() {
    let r = Scenario::everything().run(3);
    assert!(r.passed(), "{:?}", r.violation);
    assert_eq!(r.stats.failovers, 1);
    assert!(r.stats.retries > 0, "chaos must force retries");
    assert!(r.stats.dedup_hits > 0, "retransmits must hit dedup windows");
    assert!(r.stats.frames_dropped > 0, "chaos must drop frames");
    assert!(r.stats.calls_ok > 0);
}

/// Dup-heavy chaos: at-most-once must survive a link that duplicates
/// nearly a third of all frames and drops a fifth.
#[test]
fn at_most_once_survives_dup_heavy_chaos() {
    let mut s = Scenario::chaos();
    s.name = "dup-heavy".into();
    s.chaos = ChaosPolicy {
        drop_prob: 0.2,
        dup_prob: 0.3,
        reorder_prob: 0.1,
        delay_prob: 0.1,
        delay: Duration::from_millis(8),
    };
    for seed in seed_range() {
        let r = s.run(seed);
        assert!(r.passed(), "seed {seed}: {:?}", r.violation);
        assert!(r.stats.dedup_hits > 0, "seed {seed}: dups must be caught");
    }
}

/// Sim port of `fail_open_bypasses_dead_chain_entry`: with the chain
/// entry dead, a slow failure detector, and `FailOpen`, the breaker
/// opens and traffic bypasses the (dead) ACL — even the denied user
/// gets through during the degraded window.
#[test]
fn fail_open_bypasses_dead_chain_entry_in_sim() {
    let mut s = Scenario::new("fail-open");
    s.calls = 20;
    s.concurrency = 2;
    s.users = vec!["bob".into()]; // ACL would deny every call
    s.degraded = DegradedMode::FailOpen;
    s.breaker = BreakerPolicy {
        threshold: 2,
        cooldown: Duration::from_secs(60),
    };
    s.kill = Some((Duration::from_millis(5), 0));
    // Failure detection far slower than the run: the breaker, not the
    // controller, must restore availability.
    s.heartbeat_timeout = Duration::from_secs(50);
    s.sweep_interval = Duration::from_secs(20);
    s.checkpoint_interval = Duration::from_secs(20);
    s.retry.attempt_timeout = Duration::from_millis(50);
    s.allow_timeouts = true; // the pre-breaker-open attempts may expire
    let r = s.run(11);
    assert!(r.passed(), "{:?}", r.violation);
    assert!(
        r.stats.calls_ok > 0,
        "fail-open must restore availability: {:?}",
        r.stats
    );
    assert!(
        r.log.iter().any(|l| l.contains("breaker_bypass")),
        "the breaker must have bypassed the dead entry"
    );
    // Policy was genuinely bypassed: bob (ACL-denied) completed calls.
    assert_eq!(
        r.stats.calls_aborted + r.stats.calls_ok + r.stats.calls_timed_out,
        20
    );
}

/// The overload acceptance sweep: open-loop 2× offered load with the
/// shed ladder armed, 32 seeds, with the no-expired-execution and
/// goodput-floor invariants checked alongside the universal ones.
#[test]
fn overload_sweep_holds_goodput_floor_and_never_executes_expired() {
    let out = sweep_seeds(&Scenario::overload(), 0..32);
    assert!(
        out.passed(),
        "seed failed — {}",
        out.failure().map(|f| f.replay.clone()).unwrap_or_default()
    );
    assert_eq!(out.seeds_run, 32);
}

/// Overload plus link chaos (drops, dups, reorders, delays): the ladder
/// must still hold its (lower) goodput floor, and dedup must keep
/// retransmits from resurrecting exhausted deadline budgets.
#[test]
fn chaos_overload_sweep_holds_invariants() {
    let out = sweep_seeds(&Scenario::chaos_overload(), 0..32);
    assert!(
        out.passed(),
        "seed failed — {}",
        out.failure().map(|f| f.replay.clone()).unwrap_or_default()
    );
    assert_eq!(out.seeds_run, 32);
}

/// Shedding is load-bearing. At 2× offered load the armed ladder keeps
/// goodput within 20% of single-load capacity; the naive FIFO baseline
/// (same load, admission off) collapses below half of it, burns service
/// time on already-expired work, and grows an unbounded queue.
#[test]
fn shedding_preserves_goodput_where_naive_fifo_collapses() {
    let armed = Scenario::overload();
    let model = armed.overload.clone().expect("preset sets model");
    // Work the single bottleneck can complete during the issue window.
    let capacity = armed.calls as f64 * model.issue_interval.as_nanos() as f64
        / model.service_time.as_nanos() as f64;
    let with = armed.run(7);
    let without = Scenario::overload_naive().run(7);
    assert!(with.passed(), "{:?}", with.violation);
    assert!(without.passed(), "{:?}", without.violation);
    assert!(
        with.stats.calls_ok as f64 >= 0.8 * capacity,
        "shedding goodput {} below 80% of capacity {capacity}",
        with.stats.calls_ok
    );
    assert!(
        (without.stats.calls_ok as f64) < 0.5 * capacity,
        "naive baseline should collapse, got {} ok",
        without.stats.calls_ok
    );
    assert!(with.stats.calls_shed > 0, "ladder must actually shed");
    assert_eq!(with.stats.expired_executions, 0);
    assert!(
        without.stats.expired_executions > 0,
        "naive baseline must burn service on expired work"
    );
    assert!(
        with.stats.queue_peak * 4 < without.stats.queue_peak,
        "shedding must bound the queue: {} vs {}",
        with.stats.queue_peak,
        without.stats.queue_peak
    );
}

/// Overload runs stay deterministic, the shed ladder never refuses a
/// critical call, and shed verdicts are visible in the event log.
#[test]
fn overload_run_is_deterministic_and_respects_the_ladder() {
    let a = Scenario::overload().run(3);
    let b = Scenario::overload().run(3);
    assert!(a.passed(), "{:?}", a.violation);
    assert_eq!(a.log_text(), b.log_text());
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert!(
        a.log.iter().any(|l| l.contains("shed addr=")),
        "shed verdicts must appear in the log"
    );
    assert!(
        !a.log
            .iter()
            .any(|l| l.contains("shed addr=") && l.ends_with("prio=3")),
        "critical calls must never be shed by admission"
    );
}

/// A partition that outlives every retry budget must be *caught* by the
/// strict zero-loss checker — and the failure must shrink to a minimal
/// event prefix with a copy-pasteable replay command. This exercises the
/// failure path of the whole harness: detection, shrinking, replay.
#[test]
fn partition_violation_is_caught_shrunk_and_replayable() {
    let mut s = Scenario::new("partition-loss");
    s.calls = 10;
    s.concurrency = 2;
    s.partition_window = Some((Duration::from_millis(2), Duration::from_secs(600)));
    s.retry.deadline = Duration::from_millis(400);
    s.retry.max_attempts = 3;
    s.allow_timeouts = false; // strict: any timeout is a violation

    let report = s.run(5);
    let v = report
        .violation
        .clone()
        .expect("partition must violate zero-loss");
    assert_eq!(v.invariant, "zero-loss");

    let f = shrink(&s, 5).expect("failing seed must shrink");
    assert_eq!(f.violation, v);
    assert!(f.min_events <= report.events);
    assert!(f.replay.contains("--seed 5"));
    assert!(f.replay.contains(&format!("--max-events {}", f.min_events)));

    // The replay really reproduces: the capped run fails identically.
    let mut capped = s.clone();
    capped.max_events = f.min_events;
    assert_eq!(capped.run(5).violation, Some(v));
}

/// The sim port of the old `tcp_distributed.rs` 64-call concurrent
/// storm: the same ACL chain screening a mixed user population under
/// real concurrency, but on the deterministic substrate — seed-swept,
/// strict zero-loss, and byte-identical on replay instead of racing
/// sockets against a wall-clock timeout.
#[test]
fn ported_tcp_storm_is_deterministic() {
    use adn_sim::nodes::ElementSpec;

    let mut s = Scenario::new("tcp-storm");
    s.calls = 64;
    s.concurrency = 8;
    s.users = vec!["carol".into(), "alice".into(), "bob".into()];
    s.chain_specs = Some(vec![ElementSpec::plain("Acl")]);
    s.allow_timeouts = false; // clean link: every call must resolve

    let out = sweep_seeds(&s, seed_range());
    assert!(
        out.passed(),
        "seed failed — {}",
        out.failure().map(|f| f.replay.clone()).unwrap_or_default()
    );

    let a = s.run(11);
    let b = s.run(11);
    assert_eq!(a.log_text(), b.log_text(), "same seed, same bytes");
    // The writer majority lands; `bob` is read-only and every one of his
    // calls is aborted by the ACL with code 7 — none time out or vanish.
    assert_eq!(
        a.stats.calls_ok + a.stats.calls_aborted,
        a.stats.calls_issued
    );
    assert!(a.stats.calls_aborted >= 64 / 3, "bob's share is denied");
}
