//! Real-thread chaos smoke: the paper's evaluation chain under frame
//! drops, across the actual transport, threads, and retry machinery.
//! Every accepted RPC must complete exactly once (server side-effect
//! counts verify at-most-once execution under retransmits).
//!
//! This is deliberately the *only* wall-clock chaos test. The heavier
//! scenarios that used to live here — processor kill + failover,
//! partitions, breaker fail-open — are now checked per-event on the
//! deterministic simulator (`tests/sim_invariants.rs`), where they are
//! seed-swept, shrinkable, and free of sleeps.
//!
//! The fault seed comes from `ADN_CHAOS_SEED` (CI runs several) so the
//! whole run — drops and all — is reproducible.

use std::time::Duration;

use adn::harness::{AdnWorld, ChaosConfig, WorldConfig};
use adn_cluster::resources::PlacementConstraint;
use adn_rpc::chaos::ChaosPolicy;
use adn_rpc::retry::{BreakerPolicy, RetryPolicy};
use adn_rpc::RpcError;

fn chaos_seed() -> u64 {
    std::env::var("ADN_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Logging → ACL → Fault, all forced off-app so the whole chain lives in
/// one sidecar processor, with a seeded chaos fabric and server-side
/// effect tracking.
fn chaos_world(fault_prob: f64, drop_prob: f64, seed: u64) -> AdnWorld {
    let mut cfg = WorldConfig::paper_eval_chain(fault_prob);
    for spec in &mut cfg.chain {
        spec.constraints = vec![PlacementConstraint::OffApp];
    }
    cfg.chaos = Some(ChaosConfig {
        seed,
        policy: ChaosPolicy::drops(drop_prob),
    });
    cfg.track_effects = true;
    AdnWorld::start(cfg).unwrap()
}

/// Enough attempts/time to ride out the drop rate; the per-call deadline
/// still bounds every call.
fn generous_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 64,
        attempt_timeout: Duration::from_millis(250),
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        deadline: Duration::from_secs(30),
        ..RetryPolicy::default()
    }
}

#[test]
fn chain_survives_drops_exactly_once() {
    let seed = chaos_seed();
    let world = chaos_world(0.05, 0.05, seed);
    // The retry layer (not the breaker) should absorb sustained chaos.
    world.client().set_breaker_policy(BreakerPolicy {
        threshold: 1000,
        cooldown: Duration::from_millis(10),
    });

    let policy = generous_retry();
    let (mut ok, mut aborted) = (0u64, 0u64);
    const TOTAL: u64 = 200;
    for i in 0..TOTAL {
        match world.call_resilient(i, "alice", b"chaos", &policy) {
            Ok(_) => ok += 1,
            Err(RpcError::Aborted { .. }) => aborted += 1,
            Err(e) => panic!("call {i}: unexpected hard error: {e}"),
        }
    }

    assert_eq!(ok + aborted, TOTAL);
    assert!(
        ok > 0,
        "some calls must complete ({ok} ok / {aborted} aborted)"
    );

    // At-most-once: no object was ever executed twice at the server, even
    // though frames were dropped and retransmitted. (An aborted call may
    // still have one effect: its first attempt can reach the server and
    // lose only the response; the retry then replays, never re-executes.)
    let effects = world.effect_counts();
    for (oid, count) in &effects {
        assert_eq!(*count, 1, "object {oid} executed {count} times");
    }
    assert!(
        effects.len() as u64 >= ok,
        "every completed call has exactly one effect ({} effects, {ok} ok)",
        effects.len()
    );

    let cs = world.client().stats();
    assert!(cs.retries > 0, "chaos must have forced retries: {cs:?}");
    let chaos = world.chaos().unwrap().stats();
    assert!(chaos.dropped > 0, "the chaos link must have dropped frames");
}
