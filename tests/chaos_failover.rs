//! Chaos integration: the paper's evaluation chain under frame drops and a
//! processor crash. Every accepted RPC must complete exactly once (server
//! side-effect counts verify at-most-once execution under retries) and the
//! controller must re-place the dead processor's elements while the load
//! is still running.
//!
//! The fault seed comes from `ADN_CHAOS_SEED` (CI runs several) so the
//! whole run — drops and all — is reproducible.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use adn::harness::{AdnWorld, ChaosConfig, WorldConfig};
use adn_cluster::resources::PlacementConstraint;
use adn_controller::runtime::HealthPolicy;
use adn_rpc::chaos::ChaosPolicy;
use adn_rpc::retry::{BreakerPolicy, DegradedMode, RetryPolicy};
use adn_rpc::RpcError;

fn chaos_seed() -> u64 {
    std::env::var("ADN_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Logging → ACL → Fault, all forced off-app so the whole chain lives in
/// one sidecar processor (the crash target), with a seeded chaos fabric
/// and server-side effect tracking.
fn chaos_world(fault_prob: f64, drop_prob: f64, seed: u64) -> AdnWorld {
    let mut cfg = WorldConfig::paper_eval_chain(fault_prob);
    for spec in &mut cfg.chain {
        spec.constraints = vec![PlacementConstraint::OffApp];
    }
    cfg.chaos = Some(ChaosConfig {
        seed,
        policy: ChaosPolicy::drops(drop_prob),
    });
    cfg.track_effects = true;
    AdnWorld::start(cfg).unwrap()
}

/// Enough attempts/time to ride out both the drop rate and the failover
/// window; the per-call deadline still bounds every call.
fn generous_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 64,
        attempt_timeout: Duration::from_millis(250),
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        deadline: Duration::from_secs(30),
    }
}

/// The retry layer (not the breaker) should absorb sustained chaos here.
fn lenient_breaker(world: &AdnWorld) {
    world.client().set_breaker_policy(BreakerPolicy {
        threshold: 1000,
        cooldown: Duration::from_millis(10),
    });
}

#[test]
fn chain_survives_drops_and_processor_kill_exactly_once() {
    let seed = chaos_seed();
    let world = chaos_world(0.05, 0.05, seed);
    lenient_breaker(&world);
    world.controller().set_health_policy(
        "app",
        HealthPolicy {
            heartbeat_timeout: Duration::from_millis(150),
            degraded: DegradedMode::FailClosed,
        },
    );
    let entry = world.controller().processor_stats("app")[0].0;

    let done = AtomicBool::new(false);
    let policy = generous_retry();
    let (mut ok, mut aborted) = (0u64, 0u64);
    const TOTAL: u64 = 400;
    std::thread::scope(|s| {
        // The failure detector: checkpoint state, report heartbeat-dead
        // processors, and drain store events (which drives failover).
        s.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                world.controller().checkpoint_app("app");
                world.controller().monitor_health("app");
                let _ = world.sync();
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        for i in 0..TOTAL {
            if i == 100 {
                // Crash mid-run: the processor stops heartbeating and
                // blackholes traffic, like a hung process.
                assert!(world.controller().kill_processor("app", entry));
            }
            match world.call_resilient(i, "alice", b"chaos", &policy) {
                Ok(_) => ok += 1,
                Err(RpcError::Aborted { .. }) => aborted += 1,
                Err(e) => panic!("call {i}: unexpected hard error: {e}"),
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    assert_eq!(ok + aborted, TOTAL);
    assert!(
        ok > 0,
        "some calls must complete ({ok} ok / {aborted} aborted)"
    );

    // At-most-once: no object was ever executed twice at the server, even
    // though frames were dropped and retransmitted. (An aborted call may
    // still have one effect: its first attempt can reach the server and
    // lose only the response; the retry then replays, never re-executes.)
    let effects = world.effect_counts();
    for (oid, count) in &effects {
        assert_eq!(*count, 1, "object {oid} executed {count} times");
    }
    assert!(
        effects.len() as u64 >= ok,
        "every completed call has exactly one effect ({} effects, {ok} ok)",
        effects.len()
    );

    let cs = world.client().stats();
    assert!(cs.retries > 0, "chaos must have forced retries: {cs:?}");
    let chaos = world.chaos().unwrap().stats();
    assert!(chaos.dropped > 0, "the chaos link must have dropped frames");

    // The controller re-placed the dead processor within the run.
    assert!(
        world.controller().dead_processors("app").is_empty(),
        "replacement processor must be heartbeating"
    );
    let stats = world.controller().processor_stats("app");
    assert_eq!(stats.len(), 1);
    assert!(stats[0].1.requests > 0, "replacement served traffic");
}

#[test]
fn partition_heals_and_traffic_recovers() {
    let world = chaos_world(0.0, 0.0, 42);
    lenient_breaker(&world);
    let chaos = world.chaos().unwrap().clone();
    let entry = world.controller().processor_stats("app")[0].0;

    assert!(world
        .call_resilient(1, "alice", b"x", &generous_retry())
        .is_ok());

    // Cut the client ↔ chain-entry pair; frames blackhole both ways.
    chaos.partition("net-split", &[(100, entry)]);
    let quick = RetryPolicy {
        max_attempts: 2,
        attempt_timeout: Duration::from_millis(50),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        deadline: Duration::from_millis(500),
    };
    let err = world.call_resilient(2, "alice", b"x", &quick).unwrap_err();
    assert!(matches!(err, RpcError::Timeout { .. }), "got {err:?}");
    assert!(chaos.stats().partitioned > 0);

    chaos.heal("net-split");
    assert!(world
        .call_resilient(3, "alice", b"x", &generous_retry())
        .is_ok());
}

#[test]
fn fail_open_bypasses_dead_chain_entry() {
    let world = chaos_world(0.0, 0.0, 9);
    let entry = world.controller().processor_stats("app")[0].0;
    world.client().set_breaker_policy(BreakerPolicy {
        threshold: 2,
        cooldown: Duration::from_secs(60),
    });
    world.controller().set_health_policy(
        "app",
        HealthPolicy {
            heartbeat_timeout: Duration::from_millis(150),
            degraded: DegradedMode::FailOpen,
        },
    );
    assert!(world
        .call_resilient(1, "alice", b"x", &generous_retry())
        .is_ok());

    // Crash the chain entry with no failure detector running: attempts
    // time out until the breaker opens, then fail-open routes straight to
    // the destination. Availability wins over policy: even bob — whom the
    // (dead) ACL would deny — gets through during the degraded window.
    assert!(world.controller().kill_processor("app", entry));
    // The crash signal is asynchronous; wait until the heartbeat is stale
    // (which also means the processor has stopped serving) before calling.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while world.controller().dead_processors("app").is_empty() {
        assert!(std::time::Instant::now() < deadline, "processor never died");
        std::thread::sleep(Duration::from_millis(10));
    }
    let quick = RetryPolicy {
        max_attempts: 4,
        attempt_timeout: Duration::from_millis(80),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        deadline: Duration::from_secs(5),
    };
    let resp = world.call_resilient(2, "bob", b"x", &quick);
    assert!(
        resp.is_ok(),
        "fail-open must bypass the dead chain: {resp:?}"
    );
    assert!(world.client().stats().fail_open_bypasses >= 1);
}
