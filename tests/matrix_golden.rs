//! Golden-output and determinism tests for the eval-matrix.
//!
//! The tiny grid's `MATRIX.json` is committed at
//! `tests/matrix/canonical.json`; regenerate after an intentional
//! behavior change with:
//!
//! ```text
//! ADN_BLESS=1 cargo test -p adn-sim --test matrix_golden
//! ```
//!
//! The full standard grid (≥96 cells) runs under `ADN_SIM_SWEEP=1`
//! (CI's release-mode sim job); the default test run keeps to the tiny
//! grid so `cargo test` stays fast.

use std::path::PathBuf;
use std::time::Duration;

use adn_sim::matrix::{run_cell, run_grid, MatrixGrid};

fn canonical_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/matrix/canonical.json")
}

fn render(grid: &MatrixGrid, workers: usize) -> String {
    let report = run_grid(grid, workers);
    let json = serde_json::to_string_pretty(&report.to_json()).expect("serialize");
    format!("{json}\n")
}

#[test]
fn tiny_grid_matches_the_committed_golden_output() {
    // The native tier resolves differently per build target, so the
    // golden (committed, cross-machine) grid pins interp + threaded
    // only; `ADN_JIT` overrides would skew tier_used, so skip under one.
    if std::env::var_os("ADN_JIT").is_some() {
        eprintln!("skipping golden comparison: ADN_JIT is set");
        return;
    }
    let text = render(&MatrixGrid::tiny(), 1);
    let path = canonical_path();
    if std::env::var_os("ADN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; run with ADN_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        text, golden,
        "MATRIX.json for the tiny grid diverged from the golden copy; \
         if intentional, re-bless with ADN_BLESS=1"
    );
}

#[test]
fn tiny_grid_passes_and_is_worker_count_invariant() {
    let grid = MatrixGrid::tiny();
    let one = render(&grid, 1);
    let four = render(&grid, 4);
    assert_eq!(one, four, "worker count must not leak into MATRIX.json");
    let report = run_grid(&grid, 4);
    assert!(
        report.passed(),
        "tiny grid must be green: {:?}",
        report
            .cells
            .iter()
            .filter(|c| !c.pass)
            .map(|c| (&c.name, &c.invariant, &c.detail))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.cells.len(),
        16,
        "2 topologies × 2 chains × 2 chaos × 2 tiers"
    );
}

#[test]
fn injected_failure_shrinks_to_a_minimal_prefix() {
    // Doctor one cell so every seed fails: a partition outlasting the
    // 30s retry deadline under the strict zero-loss invariant. The cell
    // must fail, and the shrunk prefix must reproduce the identical
    // violation when replayed capped.
    let grid = MatrixGrid::tiny();
    let mut cell = grid.cells().into_iter().next().expect("cell");
    cell.scenario.partition_window = Some((Duration::from_millis(1), Duration::from_secs(120)));
    cell.scenario.allow_timeouts = false;
    let result = run_cell(&cell);
    assert!(!result.pass, "injected partition must fail the cell");
    let invariant = result.invariant.clone().expect("violated invariant named");
    let seed = result.failed_seed.expect("failing seed recorded");
    let min = result.min_events.expect("shrunk prefix recorded");
    let replay = result.replay.expect("replay command recorded");
    assert!(
        replay.contains("--cell"),
        "replay targets the cell: {replay}"
    );
    assert!(replay.contains(&format!("--seed {seed}")));
    assert!(replay.contains(&format!("--max-events {min}")));
    // Re-run the shrunk prefix: determinism makes the shrink exact for
    // stepwise invariants; end-check violations need the full run, in
    // which case min == events and the capped run reproduces it too.
    let mut capped = cell.scenario.clone();
    capped.max_events = min;
    let confirm = capped.run(seed);
    let v = confirm.violation.expect("capped replay still fails");
    assert_eq!(v.invariant, invariant);
}

#[test]
fn standard_grid_is_deterministic_at_any_worker_count() {
    // ≥96 cells end to end: tier-2 (release-mode CI sim job) only.
    if std::env::var_os("ADN_SIM_SWEEP").is_none() {
        eprintln!("skipping standard-grid sweep: set ADN_SIM_SWEEP=1 to run");
        return;
    }
    let grid = MatrixGrid::standard();
    let cells = grid.cells();
    assert!(cells.len() >= 96, "standard grid has {} cells", cells.len());
    let one = render(&grid, 1);
    let three = render(&grid, 3);
    assert_eq!(one, three, "worker count must not leak into MATRIX.json");
    let report = run_grid(&grid, 3);
    assert!(
        report.passed(),
        "standard grid must be green: {:?}",
        report
            .cells
            .iter()
            .filter(|c| !c.pass)
            .map(|c| (&c.name, &c.invariant, &c.detail))
            .collect::<Vec<_>>()
    );
}
