//! Property tests over randomly generated [`Scenario`]s: topology size,
//! chaos policy, workload mix, and optional reconfiguration hooks are
//! all drawn from strategies, and every generated cluster must hold all
//! armed invariants at every event step.
//!
//! Tier-1 keeps case counts small; `ADN_SIM_SWEEP=1` (tier-2 / the CI
//! `sim` job) multiplies them.

use std::time::Duration;

use adn_rpc::chaos::ChaosPolicy;
use adn_sim::{Scenario, SimAutoscale};
use proptest::arbitrary::any;
use proptest::test_runner::ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};

/// All users the workload strategy can draw from. `bob` and `eve` are
/// read-only in the ACL table, so mixes including them exercise the
/// policy-abort path.
const USER_POOL: [&str; 5] = ["alice", "bob", "carol", "dave", "eve"];

fn cases(tier1: u32) -> u32 {
    if std::env::var("ADN_SIM_SWEEP").is_ok() {
        tier1 * 4
    } else {
        tier1
    }
}

/// Builds a scenario from raw strategy draws. Probabilities arrive as
/// permille integers so the generated values are exactly representable
/// and runs stay reproducible from the printed parameters.
#[allow(clippy::too_many_arguments)]
fn scenario_from(
    procs: u64,
    calls: u64,
    concurrency: u64,
    user_mask: u64,
    drop_pm: u64,
    dup_pm: u64,
    delay_pm: u64,
    fault_pm: u64,
    migrate: bool,
    autoscale: bool,
) -> Scenario {
    let mut s = Scenario::new("prop");
    s.processors = procs as usize;
    s.calls = calls;
    s.concurrency = concurrency;
    // Non-empty user subset from the pool; the mask's low bits pick.
    s.users = USER_POOL
        .iter()
        .enumerate()
        .filter(|(i, _)| user_mask & (1 << i) != 0)
        .map(|(_, u)| u.to_string())
        .collect();
    if s.users.is_empty() {
        s.users = vec!["alice".into()];
    }
    s.fault_prob = fault_pm as f64 / 1000.0;
    s.chaos = ChaosPolicy {
        drop_prob: drop_pm as f64 / 1000.0,
        dup_prob: dup_pm as f64 / 1000.0,
        reorder_prob: 0.0,
        delay_prob: delay_pm as f64 / 1000.0,
        delay: Duration::from_millis(4),
    };
    if migrate {
        s.migrate = Some((Duration::from_millis(30), 0));
    }
    if autoscale {
        s.autoscale = Some(SimAutoscale {
            threshold: 12,
            cooldown: Duration::from_millis(80),
            max_shards: 3,
        });
    }
    // Chaos and fault injection legitimately abort or time out calls;
    // the invariant set still demands at-most-once, trace shape, and
    // cooldown monotonicity.
    s.allow_timeouts = drop_pm > 0 || dup_pm > 0 || delay_pm > 0 || fault_pm > 0;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// Any generated topology/chaos/workload combination holds every
    /// armed invariant at every event step.
    #[test]
    fn generated_scenarios_hold_all_invariants(
        procs in 1u64..=4,
        calls in 10u64..40,
        concurrency in 1u64..=6,
        user_mask in 1u64..32,
        drop_pm in 0u64..120,
        dup_pm in 0u64..120,
        delay_pm in 0u64..120,
        fault_pm in 0u64..60,
        migrate in any::<bool>(),
        autoscale in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let s = scenario_from(
            procs, calls, concurrency, user_mask, drop_pm, dup_pm, delay_pm,
            fault_pm, migrate, autoscale,
        );
        let r = s.run(seed);
        prop_assert!(
            !r.truncated,
            "scenario hit the event cap: procs={procs} calls={calls} seed={seed}"
        );
        prop_assert!(
            r.passed(),
            "invariant violated (procs={procs} calls={calls} conc={concurrency} \
             users={user_mask:#07b} drop={drop_pm}‰ dup={dup_pm}‰ delay={delay_pm}‰ \
             fault={fault_pm}‰ migrate={migrate} autoscale={autoscale} seed={seed}): {:?}",
            r.violation
        );
        prop_assert_eq!(
            r.stats.calls_ok + r.stats.calls_aborted + r.stats.calls_timed_out,
            r.stats.calls_issued,
            "every issued call must resolve (seed={})", seed
        );
    }

    /// On a clean link every generated scenario is strictly zero-loss,
    /// and determinism holds per generated scenario, not just presets:
    /// re-running the same draw reproduces the same fingerprint.
    #[test]
    fn clean_link_scenarios_are_zero_loss_and_deterministic(
        procs in 1u64..=4,
        calls in 10u64..40,
        concurrency in 1u64..=6,
        user_mask in 1u64..32,
        migrate in any::<bool>(),
        autoscale in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let s = scenario_from(
            procs, calls, concurrency, user_mask, 0, 0, 0, 0, migrate, autoscale,
        );
        let r = s.run(seed);
        prop_assert!(r.passed(), "seed {seed}: {:?}", r.violation);
        prop_assert_eq!(r.stats.calls_timed_out, 0);
        prop_assert_eq!(
            r.stats.calls_ok + r.stats.calls_aborted,
            r.stats.calls_issued
        );
        let again = s.run(seed);
        prop_assert_eq!(r.fingerprint(), again.fingerprint());
        prop_assert_eq!(r.log_text(), again.log_text());
    }
}
