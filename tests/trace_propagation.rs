//! In-band trace propagation under adversity: a 3-hop chain
//! (client → processor → processor → server) on a lossy, duplicating
//! fabric. The trace id minted by the client must survive the processors'
//! NAT rewrites, the dedup windows, and every retransmission — a retried
//! call id reuses the same trace id, never a fresh one.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use adn::harness::object_store_service;
use adn_dataplane::processor::{spawn_processor, NextHop, ProcessorConfig};
use adn_rpc::chaos::{ChaosLink, ChaosPolicy};
use adn_rpc::engine::{Engine, EngineChain, Verdict};
use adn_rpc::message::RpcMessage;
use adn_rpc::retry::RetryPolicy;
use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
use adn_rpc::transport::{InProcNetwork, Link};
use adn_rpc::value::Value;
use adn_telemetry::{HopTelemetry, Registry, Sampler, SpanRing};

struct Passthrough(&'static str);

impl Engine for Passthrough {
    fn name(&self) -> &str {
        self.0
    }
    fn process(&mut self, _msg: &mut RpcMessage) -> Verdict {
        Verdict::Forward
    }
}

#[test]
fn trace_ids_survive_nat_dedup_and_retries_across_three_hops() {
    let net = InProcNetwork::new();
    let chaos = ChaosLink::with_policy(
        Arc::new(net.clone()),
        11,
        ChaosPolicy {
            drop_prob: 0.08,
            dup_prob: 0.08,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
        },
    );
    let link: Arc<dyn Link> = chaos.clone();
    let svc = object_store_service();

    let svc2 = svc.clone();
    let _server = spawn_server(
        ServerConfig {
            addr: 2,
            service: svc.clone(),
            chain: EngineChain::new(),
        },
        link.clone(),
        net.attach(2),
        Box::new(move |req| {
            let m = svc2.method_by_id(req.method_id).unwrap();
            let mut resp = RpcMessage::response_to(req, m.response.clone());
            resp.set("ok", Value::Bool(true));
            resp.set("payload", Value::Bytes(vec![1]));
            resp
        }),
    );

    let telemetry = HopTelemetry {
        app: "traced".into(),
        registry: Arc::new(Registry::new()),
        spans: Arc::new(SpanRing::new(65_536)),
        sampler: Arc::new(Sampler::off()),
        metrics_processor: None,
    };
    let chain = |name: &'static str| {
        EngineChain::from_engines(vec![Box::new(Passthrough(name)) as Box<dyn Engine>])
    };
    let _second = spawn_processor(
        ProcessorConfig::new(
            6,
            svc.clone(),
            chain("second"),
            NextHop::Fixed(2),
            NextHop::Dst,
        )
        .with_telemetry(telemetry.clone()),
        link.clone(),
        net.attach(6),
    );
    let _first = spawn_processor(
        ProcessorConfig::new(
            5,
            svc.clone(),
            chain("first"),
            NextHop::Fixed(6),
            NextHop::Dst,
        )
        .with_telemetry(telemetry.clone()),
        link.clone(),
        net.attach(5),
    );

    let client = RpcClient::new(100, link, net.attach(100), svc.clone(), EngineChain::new());
    client.set_via(Some(5));
    client.set_trace_sampling(1.0);

    let policy = RetryPolicy {
        max_attempts: 64,
        attempt_timeout: Duration::from_millis(150),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        deadline: Duration::from_secs(20),
        ..RetryPolicy::default()
    };
    let m = svc.method_by_id(1).unwrap();
    let mut completed = 0u64;
    for i in 0..60u64 {
        let msg = RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", i)
            .with("username", "alice")
            .with("payload", b"x".to_vec());
        if client.call_resilient(msg, 2, &policy).is_ok() {
            completed += 1;
        }
    }
    assert!(
        completed >= 55,
        "retries should ride out the loss: {completed}/60 completed"
    );

    // The adversity must actually have happened for the test to mean
    // anything: frames dropped and duplicated, calls retransmitted.
    let faults = chaos.stats();
    assert!(faults.dropped > 0, "{faults:?}");
    assert!(faults.duplicated > 0, "{faults:?}");
    assert!(
        client.stats().retries > 0,
        "drops must force retransmissions"
    );

    // Let in-flight response hops land their spans.
    std::thread::sleep(Duration::from_millis(100));
    let spans = telemetry.spans.drain();
    assert!(!spans.is_empty());

    // One trace id per call id, across every retry and duplicate: the
    // client mints the root context once and retransmits identical bytes.
    let mut per_call: HashMap<u64, HashSet<u64>> = HashMap::new();
    for s in &spans {
        per_call.entry(s.call_id).or_default().insert(s.trace_id);
    }
    for (call, traces) in &per_call {
        assert_eq!(traces.len(), 1, "call {call} saw trace ids {traces:?}");
    }
    // ...and distinct calls got distinct traces.
    let distinct: HashSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    assert!(distinct.len() >= 50, "{} distinct traces", distinct.len());

    // Both hops recorded spans, and the parent chain is threaded: the
    // first hop's request span is the root (parent 0), and the second
    // hop's request span names it as parent.
    let roots: HashMap<u64, u64> = spans
        .iter()
        .filter(|s| s.processor == 5 && s.parent_span == 0)
        .map(|s| (s.trace_id, s.span_id))
        .collect();
    assert!(!roots.is_empty(), "first hop must emit root spans");
    let threaded = spans
        .iter()
        .filter(|s| s.processor == 6)
        .filter(|s| roots.get(&s.trace_id) == Some(&s.parent_span))
        .count();
    assert!(
        threaded > 0,
        "second-hop spans must parent onto first-hop spans"
    );
}
