//! Real-thread reconfiguration smoke for paper §5.2's claim:
//! reconfiguration (migration, scale-out, scale-in) does not disrupt the
//! application — zero lost calls, element state preserved exactly.
//!
//! The load here is synchronous — batches of calls between each
//! reconfiguration step — so the test needs no background threads and no
//! wall-clock sleeps. The harder variant, with calls *in flight during*
//! every reconfiguration (plus crashes and chaos), runs per-event on the
//! deterministic simulator: see
//! `reconfig_scenario_is_zero_loss_through_migration_and_scaleout` in
//! `tests/sim_invariants.rs`.

use std::sync::Arc;
use std::time::Duration;

use adn::harness::{object_store_schemas, object_store_service};
use adn_backend::native::{compile_element, CompileOpts};
use adn_controller::deploy::AddrAllocator;
use adn_controller::reconfig::{migrate_processor, scale_in, scale_out};
use adn_dataplane::processor::{spawn_processor, NextHop, ProcessorConfig, DEFAULT_BATCH_MAX};
use adn_rpc::engine::EngineChain;
use adn_rpc::message::RpcMessage;
use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
use adn_rpc::transport::{InProcNetwork, Link};
use adn_rpc::value::Value;

const USERS: [&str; 6] = ["alice", "carol", "dave", "u4", "u5", "u6"];

struct Rig {
    net: InProcNetwork,
    link: Arc<dyn Link>,
    service: Arc<adn_rpc::schema::ServiceSchema>,
    client: Arc<RpcClient>,
    element: adn_ir::ElementIr,
    _server: adn_rpc::runtime::ServerHandle,
}

fn rig() -> Rig {
    let (req_schema, resp_schema) = object_store_schemas();
    let service = object_store_service();
    let net = InProcNetwork::new();
    let link: Arc<dyn Link> = Arc::new(net.clone());

    let server_frames = net.attach(200);
    let svc = service.clone();
    let server = spawn_server(
        ServerConfig {
            addr: 200,
            service: service.clone(),
            chain: EngineChain::new(),
        },
        link.clone(),
        server_frames,
        Box::new(move |req| {
            let m = svc.method_by_id(req.method_id).unwrap();
            let mut resp = RpcMessage::response_to(req, m.response.clone());
            resp.set("ok", Value::Bool(true));
            resp
        }),
    );

    let element = adn_elements::build("Metrics", &[], &req_schema, &resp_schema).unwrap();
    let client_frames = net.attach(100);
    let client = RpcClient::new(
        100,
        link.clone(),
        client_frames,
        service.clone(),
        EngineChain::new(),
    );
    client.set_via(Some(50));

    Rig {
        net,
        link,
        service,
        client,
        element,
        _server: server,
    }
}

fn make_chain(element: &adn_ir::ElementIr) -> EngineChain {
    let mut chain = EngineChain::new();
    chain.push(Box::new(compile_element(
        element,
        &CompileOpts {
            seed: 1,
            replicas: vec![],
            ..Default::default()
        },
    )));
    chain
}

/// Issues `n` synchronous calls starting at object id `start`; every one
/// must succeed (strict zero loss — a single failure panics).
fn run_calls(rig: &Rig, start: u64, n: u64) {
    let m = rig.service.method_by_id(1).unwrap();
    for i in start..start + n {
        let msg = RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", i)
            .with("username", USERS[(i % 6) as usize])
            .with("payload", b"x".to_vec());
        rig.client
            .send_call(msg, 200)
            .and_then(|p| p.wait(Duration::from_secs(10)))
            .unwrap_or_else(|e| panic!("call {i} lost during reconfiguration: {e}"));
    }
}

#[test]
fn migrate_scale_out_scale_in_loses_nothing() {
    let rig = rig();
    let frames = rig.net.attach(50);
    let processor = spawn_processor(
        ProcessorConfig {
            addr: 50,
            service: rig.service.clone(),
            chain: make_chain(&rig.element),
            request_next: NextHop::Fixed(200),
            response_next: NextHop::Dst,
            initial_flows: Default::default(),
            telemetry: None,
            clock: None,
            batch_max: DEFAULT_BATCH_MAX,
            overload: Default::default(),
            inbox_capacity: None,
        },
        rig.link.clone(),
        frames,
    );
    run_calls(&rig, 0, 36);

    // Migrate.
    let element = rig.element.clone();
    let processor = migrate_processor(
        processor,
        move || make_chain(&element),
        &rig.net,
        rig.link.clone(),
        rig.service.clone(),
        NextHop::Fixed(200),
    )
    .unwrap();
    run_calls(&rig, 36, 36);

    // Scale out to 3 keyed shards.
    let alloc = AddrAllocator::new(5000);
    let group = scale_out(
        processor,
        std::slice::from_ref(&rig.element),
        1,
        3,
        9,
        &[],
        &rig.net,
        rig.link.clone(),
        rig.service.clone(),
        NextHop::Fixed(200),
        &alloc,
        None,
    )
    .unwrap();
    run_calls(&rig, 72, 60);

    // Scale back in.
    let merged = scale_in(
        group,
        std::slice::from_ref(&rig.element),
        9,
        &[],
        &rig.net,
        rig.link.clone(),
        rig.service.clone(),
        NextHop::Fixed(200),
    )
    .unwrap();
    run_calls(&rig, 132, 36);
    let ok = 36 + 36 + 60 + 36u64;

    // State correctness: total hit count across users equals calls that
    // passed the Metrics element — counters survived a migration, a keyed
    // split into three shards, and a merge back. Decode and sum.
    let images = merged.export_state().unwrap();
    merged.stop();
    let mut table = adn_backend::state::StateTable::new(adn_ir::TableIr {
        init_rows: vec![],
        ..rig.element.tables[0].clone()
    });
    // NativeEngine image: varint table count + length-prefixed snapshots.
    let mut dec = adn_wire::codec::Decoder::new(&images[0]);
    assert_eq!(dec.get_varint().unwrap(), 1);
    table.restore(dec.get_bytes().unwrap()).unwrap();
    let total: u64 = table.scan().map(|row| row[1].as_u64().unwrap()).sum();
    assert_eq!(
        total, ok,
        "per-user counters must account for every successful call"
    );
    assert_eq!(table.len(), USERS.len());
}
