//! In-band deadline propagation under adversity: a 3-hop chain
//! (client → processor → processor → server) on a lossy, duplicating
//! fabric. The relative budget stamped by `call_resilient` must only
//! ever shrink as it moves down the chain — hops decrement it by their
//! elapsed time, retransmissions re-stamp the *remaining* client
//! deadline (never the original), and neither a duplicate frame nor a
//! dedup-window replay may resurrect a larger budget than the chain has
//! already seen for that call.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use adn::harness::object_store_service;
use adn_dataplane::processor::{spawn_processor, NextHop, ProcessorConfig};
use adn_rpc::chaos::{ChaosLink, ChaosPolicy};
use adn_rpc::engine::{Engine, EngineChain, Verdict};
use adn_rpc::message::{MessageKind, RpcMessage};
use adn_rpc::retry::{BreakerPolicy, RetryPolicy};
use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
use adn_rpc::transport::{InProcNetwork, Link};
use adn_rpc::value::Value;
use adn_wire::header::Priority;
use parking_lot::Mutex;

/// Per-hop record stream: `(call_id, budget_ns)`, where `None` marks a
/// request that arrived with no deadline at all — under a propagating
/// retry policy that is itself a bug.
type SeenBudgets = Arc<Mutex<Vec<(u64, Option<u64>)>>>;

/// Records every request's deadline budget (ns) as it passes this hop.
struct BudgetProbe {
    name: &'static str,
    seen: SeenBudgets,
}

impl Engine for BudgetProbe {
    fn name(&self) -> &str {
        self.name
    }
    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        if msg.kind == MessageKind::Request {
            self.seen
                .lock()
                .push((msg.call_id, msg.deadline.as_ref().map(|d| d.budget_ns)));
        }
        Verdict::Forward
    }
}

#[test]
fn deadline_budgets_only_shrink_across_hops_retries_and_duplicates() {
    let net = InProcNetwork::new();
    let chaos = ChaosLink::with_policy(
        Arc::new(net.clone()),
        17,
        ChaosPolicy {
            drop_prob: 0.08,
            dup_prob: 0.08,
            // Reorder/delay off: with a FIFO fabric, per-call budgets must
            // arrive in non-increasing order at every hop (a duplicate
            // repeats the previous stamp, a retry re-stamps less).
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
        },
    );
    let link: Arc<dyn Link> = chaos.clone();
    let svc = object_store_service();

    let svc2 = svc.clone();
    let _server = spawn_server(
        ServerConfig {
            addr: 2,
            service: svc.clone(),
            chain: EngineChain::new(),
        },
        link.clone(),
        net.attach(2),
        Box::new(move |req| {
            let m = svc2.method_by_id(req.method_id).unwrap();
            let mut resp = RpcMessage::response_to(req, m.response.clone());
            resp.set("ok", Value::Bool(true));
            resp.set("payload", Value::Bytes(vec![1]));
            resp
        }),
    );

    let first_seen = SeenBudgets::default();
    let second_seen = SeenBudgets::default();
    let probe = |name: &'static str, seen: &SeenBudgets| {
        EngineChain::from_engines(vec![Box::new(BudgetProbe {
            name,
            seen: seen.clone(),
        }) as Box<dyn Engine>])
    };
    let second_hop = Arc::new(spawn_processor(
        ProcessorConfig::new(
            6,
            svc.clone(),
            probe("second", &second_seen),
            NextHop::Fixed(2),
            NextHop::Dst,
        ),
        link.clone(),
        net.attach(6),
    ));
    let _first = spawn_processor(
        ProcessorConfig::new(
            5,
            svc.clone(),
            probe("first", &first_seen),
            NextHop::Fixed(6),
            NextHop::Dst,
        ),
        link.clone(),
        net.attach(5),
    );

    let client = RpcClient::new(100, link, net.attach(100), svc.clone(), EngineChain::new());
    client.set_via(Some(5));
    // Heavy sustained loss trips the default breaker by design; this test
    // is about deadline propagation, so make the breaker tolerant.
    client.set_breaker_policy(BreakerPolicy {
        threshold: 1000,
        cooldown: Duration::from_millis(10),
    });

    let policy = RetryPolicy {
        max_attempts: 64,
        attempt_timeout: Duration::from_millis(150),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        deadline: Duration::from_secs(20),
        propagate_deadline: true,
        priority: Priority::Normal,
    };
    let m = svc.method_by_id(1).unwrap();
    let mut completed = 0u64;
    for i in 0..100u64 {
        let msg = RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", i)
            .with("username", "alice")
            .with("payload", b"x".to_vec());
        if client.call_resilient(msg, 2, &policy).is_ok() {
            completed += 1;
        }
    }
    assert!(
        completed >= 90,
        "retries should ride out the loss: {completed}/100 completed"
    );

    // The adversity must actually have happened for the test to mean
    // anything: frames dropped and duplicated, calls retransmitted.
    let faults = chaos.stats();
    assert!(faults.dropped > 0, "{faults:?}");
    assert!(faults.duplicated > 0, "{faults:?}");
    assert!(
        client.stats().retries > 0,
        "drops must force retransmissions"
    );

    let first = first_seen.lock().clone();
    let second = second_seen.lock().clone();
    assert!(!first.is_empty() && !second.is_empty());

    let budget_cap = policy.deadline.as_nanos() as u64;
    let mut per_call: HashMap<u64, (Vec<u64>, Vec<u64>)> = HashMap::new();
    for (hop, records) in [(0usize, &first), (1usize, &second)] {
        for (call, budget) in records {
            // Every stamped request carries a live, bounded budget: no hop
            // strips it, no hop inflates it past the client's deadline.
            let b = budget.unwrap_or_else(|| panic!("call {call} lost its deadline at hop {hop}"));
            assert!(b > 0, "call {call} arrived already expired at hop {hop}");
            assert!(b <= budget_cap, "call {call} budget grew past the root");
            let entry = per_call.entry(*call).or_default();
            if hop == 0 {
                entry.0.push(b);
            } else {
                entry.1.push(b);
            }
        }
    }

    let mut restamped_calls = 0;
    for (call, (at_first, at_second)) in &per_call {
        // The chain runs at most once per call per hop (dedup absorbs
        // retransmits before the chain), but tolerate replays: no later
        // arrival may carry more budget than an earlier one — a dedup
        // path that resurrected the original stamp would break this.
        for window in [at_first, at_second] {
            for pair in window.windows(2) {
                assert!(
                    pair[1] <= pair[0],
                    "call {call}: budget grew mid-chain {pair:?}"
                );
            }
        }
        // Monotone across hops: everything the second hop saw passed the
        // first hop with at least as much budget.
        if let (Some(max1), Some(max2)) = (at_first.iter().max(), at_second.iter().max()) {
            assert!(
                max2 <= max1,
                "call {call}: second hop saw more budget ({max2}) than the first ({max1})"
            );
        }
        // A call whose first attempt was dropped before the first hop
        // reaches the chain on a retry — stamped with the *remaining*
        // deadline, at least one attempt-timeout (150 ms) poorer. Seeing
        // one proves retries re-stamp rather than replay the root budget.
        if at_first
            .iter()
            .any(|b| *b <= budget_cap - Duration::from_millis(100).as_nanos() as u64)
        {
            restamped_calls += 1;
        }
    }
    assert!(
        restamped_calls > 0,
        "some retried call must reach the chain with a visibly smaller re-stamped budget"
    );

    // Hops charge measured queue wait against the budget. An unloaded
    // processor charges zero (frames pulled from an empty queue never
    // waited), so force the wait deterministically: freeze the second
    // hop's intake, let one call's frame sit in its queue ~60 ms, and
    // check the budget it then sees is visibly poorer than what the
    // first hop stamped through. Retried if chaos eats the frame.
    let mut charged = false;
    for i in 0..5u64 {
        let (len1, len2) = (first_seen.lock().len(), second_seen.lock().len());
        second_hop.pause();
        let resumer = {
            let h = second_hop.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(60));
                h.resume();
            })
        };
        let msg = RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", 1000 + i)
            .with("username", "alice")
            .with("payload", b"x".to_vec());
        let _ = client.call_resilient(msg, 2, &policy);
        resumer.join().unwrap();
        let new1: Vec<u64> = first_seen.lock()[len1..]
            .iter()
            .filter_map(|(_, b)| *b)
            .collect();
        let new2: Vec<u64> = second_seen.lock()[len2..]
            .iter()
            .filter_map(|(_, b)| *b)
            .collect();
        let margin = Duration::from_millis(40).as_nanos() as u64;
        if let (Some(max1), Some(min2)) = (new1.iter().max(), new2.iter().min()) {
            if min2 + margin <= *max1 {
                charged = true;
                break;
            }
        }
    }
    assert!(
        charged,
        "a queued frame's measured wait must be charged against its budget"
    );
}
