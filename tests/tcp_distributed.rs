//! The same ADN machinery over real TCP sockets: two "hosts" (separate
//! `TcpLink`s bound to loopback ports) carry the flat-identifier fabric,
//! demonstrating that nothing in the stack depends on the in-process
//! channel transport.
//!
//! This is deliberately a *transport smoke*: one bit-exact payload
//! roundtrip and one local ACL denial. The old 64-call concurrent storm
//! lives on the deterministic sim substrate now
//! (`tests/sim_invariants.rs::ported_tcp_storm_is_deterministic`), where
//! it is seed-swept and free of socket timing.

use std::sync::Arc;
use std::time::Duration;

use adn::harness::{object_store_schemas, object_store_service};
use adn_backend::native::{compile_element, CompileOpts};
use adn_rpc::engine::EngineChain;
use adn_rpc::message::RpcMessage;
use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
use adn_rpc::transport::{Frame, Link, TcpLink};
use adn_rpc::value::Value;

/// A bridge link: local endpoints deliver through the TcpLink's routing
/// table; the reader pump re-injects inbound TCP frames into per-endpoint
/// channels, giving `RpcClient`/`spawn_server` their usual receivers.
struct TcpHost {
    link: Arc<TcpLink>,
    net: adn_rpc::transport::InProcNetwork,
}

impl TcpHost {
    fn new() -> Arc<Self> {
        let link = TcpLink::bind("127.0.0.1:0").expect("bind");
        let host = Arc::new(Self {
            link,
            net: adn_rpc::transport::InProcNetwork::new(),
        });
        // Pump: inbound TCP frames → local endpoint channels.
        let pump = host.clone();
        std::thread::spawn(move || {
            while let Ok(frame) = pump.link.incoming().recv() {
                let _ = pump.net.send(frame);
            }
        });
        host
    }

    fn attach(&self, addr: u64) -> crossbeam::channel::Receiver<Frame> {
        self.net.attach(addr)
    }
}

impl Link for TcpHost {
    fn send(&self, frame: Frame) -> adn_rpc::RpcResult<()> {
        // Local endpoints first; remote ones go over TCP.
        if self.net.is_attached(frame.dst) {
            self.net.send(frame)
        } else {
            self.link.send(frame)
        }
    }
}

#[test]
fn acl_chain_works_across_real_tcp() {
    let (req_schema, resp_schema) = object_store_schemas();
    let service = object_store_service();

    // Host B: the storage service at endpoint 200.
    let host_b = TcpHost::new();
    let server_frames = host_b.attach(200);
    let svc = service.clone();
    let host_b_link: Arc<dyn Link> = host_b.clone();
    let _server = spawn_server(
        ServerConfig {
            addr: 200,
            service: service.clone(),
            chain: EngineChain::new(),
        },
        host_b_link,
        server_frames,
        Box::new(move |req| {
            let m = svc.method_by_id(req.method_id).unwrap();
            let mut resp = RpcMessage::response_to(req, m.response.clone());
            resp.set("ok", Value::Bool(true));
            if let Some(p) = req.get("payload") {
                resp.set("payload", p.clone());
            }
            resp
        }),
    );

    // Host A: the frontend client at endpoint 100, with the compiled ACL
    // in its RPC library.
    let host_a = TcpHost::new();
    let acl = adn_elements::build("Acl", &[], &req_schema, &resp_schema).unwrap();
    let mut chain = EngineChain::new();
    chain.push(Box::new(compile_element(&acl, &CompileOpts::default())));
    let client_frames = host_a.attach(100);
    let host_a_link: Arc<dyn Link> = host_a.clone();
    let client = RpcClient::new(100, host_a_link, client_frames, service.clone(), chain);

    // Controller-distributed routing tables: A knows where 200 lives,
    // B knows where 100 lives.
    host_a.link.add_route(200, host_b.link.local_addr());
    host_b.link.add_route(100, host_a.link.local_addr());

    let m = service.method_by_id(1).unwrap();
    let call = |oid: u64, user: &str, payload: &[u8]| {
        let msg = RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", oid)
            .with("username", user)
            .with("payload", payload.to_vec());
        client
            .send_call(msg, 200)
            .and_then(|p| p.wait(Duration::from_secs(10)))
    };

    // Writers succeed over the wire; payloads roundtrip bit-exact.
    let payload: Vec<u8> = (0..1500u32).map(|i| (i % 256) as u8).collect();
    let resp = call(1, "alice", &payload).unwrap();
    assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(
        resp.get("payload").and_then(|v| v.as_bytes()),
        Some(&payload[..])
    );

    // Denied locally, before any bytes hit the socket.
    let err = call(2, "bob", b"x").unwrap_err();
    assert!(matches!(err, adn_rpc::RpcError::Aborted { code: 7, .. }));
}
