//! Live reconfiguration (paper §5.2): while a client hammers the chain,
//! the controller migrates the processor, scales it out to three keyed
//! shards behind a shard router, and merges it back — with zero failed
//! calls and no state loss.
//!
//! Run with: `cargo run --example live_scaling`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adn::harness::{object_store_schemas, object_store_service};
use adn_backend::jit::compile_engine;
use adn_backend::native::CompileOpts;
use adn_controller::deploy::AddrAllocator;
use adn_controller::reconfig::{migrate_processor, scale_in, scale_out};
use adn_dataplane::processor::{spawn_processor, NextHop, ProcessorConfig, DEFAULT_BATCH_MAX};
use adn_rpc::engine::EngineChain;
use adn_rpc::message::RpcMessage;
use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
use adn_rpc::transport::{InProcNetwork, Link};
use adn_rpc::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (req_schema, resp_schema) = object_store_schemas();
    let service = object_store_service();
    let net = InProcNetwork::new();
    let link: Arc<dyn Link> = Arc::new(net.clone());

    // Echo server at 200.
    let server_frames = net.attach(200);
    let svc = service.clone();
    let _server = spawn_server(
        ServerConfig {
            addr: 200,
            service: service.clone(),
            chain: EngineChain::new(),
        },
        link.clone(),
        server_frames,
        Box::new(move |req| {
            let m = svc.method_by_id(req.method_id).expect("method");
            let mut resp = RpcMessage::response_to(req, m.response.clone());
            resp.set("ok", Value::Bool(true));
            resp
        }),
    );

    // A per-user Metrics processor at 50 (keyed state: perfect for sharding).
    let element = adn_elements::build("Metrics", &[], &req_schema, &resp_schema)?;
    let make_chain = {
        let element = element.clone();
        move || {
            let mut chain = EngineChain::new();
            chain.push(compile_engine(
                &element,
                &CompileOpts {
                    seed: 1,
                    replicas: vec![],
                    ..Default::default()
                },
            ));
            chain
        }
    };
    let frames = net.attach(50);
    let processor = spawn_processor(
        ProcessorConfig {
            addr: 50,
            service: service.clone(),
            chain: make_chain(),
            request_next: NextHop::Fixed(200),
            response_next: NextHop::Dst,
            initial_flows: Default::default(),
            telemetry: None,
            clock: None,
            batch_max: DEFAULT_BATCH_MAX,
            overload: Default::default(),
            inbox_capacity: None,
        },
        link.clone(),
        frames,
    );

    let client_frames = net.attach(100);
    let client = RpcClient::new(
        100,
        link.clone(),
        client_frames,
        service.clone(),
        EngineChain::new(),
    );
    client.set_via(Some(50));

    // Background load: sequential calls as fast as they complete.
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let client = client.clone();
        let service = service.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let m = service.method_by_id(1).expect("method");
            let users = ["alice", "carol", "dave", "u4", "u5", "u6"];
            let (mut ok, mut failed, mut i) = (0u64, 0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let msg = RpcMessage::request(0, 1, m.request.clone())
                    .with("object_id", i)
                    .with("username", users[(i % 6) as usize])
                    .with("payload", b"x".to_vec());
                match client
                    .send_call(msg, 200)
                    .and_then(|p| p.wait(Duration::from_secs(10)))
                {
                    Ok(_) => ok += 1,
                    Err(_) => failed += 1,
                }
                i += 1;
            }
            (ok, failed)
        })
    };

    std::thread::sleep(Duration::from_millis(200));
    println!("load running; migrating the processor live...");
    let alloc = AddrAllocator::new(5000);
    let processor = migrate_processor(
        processor,
        make_chain.clone(),
        &net,
        link.clone(),
        service.clone(),
        NextHop::Fixed(200),
    )?;
    println!("  migrated (state moved, address taken over, queue drained)");
    std::thread::sleep(Duration::from_millis(200));

    println!("scaling out to 3 shards keyed by username...");
    let group = scale_out(
        processor,
        std::slice::from_ref(&element),
        1, // username field index
        3,
        9,
        &[],
        &net,
        link.clone(),
        service.clone(),
        NextHop::Fixed(200),
        &alloc,
        None,
    )?;
    println!(
        "  shard router live at the old address; instances at {:?}",
        group.instances.iter().map(|i| i.addr()).collect::<Vec<_>>()
    );
    std::thread::sleep(Duration::from_millis(300));

    println!("scaling back in (merging shard state)...");
    let merged = scale_in(
        group,
        std::slice::from_ref(&element),
        9,
        &[],
        &net,
        link.clone(),
        service.clone(),
        NextHop::Fixed(200),
    )?;
    std::thread::sleep(Duration::from_millis(200));

    stop.store(true, Ordering::Relaxed);
    let (ok, failed) = load.join().expect("load thread");
    println!("\nload summary: {ok} calls OK, {failed} failed");
    assert_eq!(
        failed, 0,
        "reconfiguration must not disrupt the application"
    );

    // Verify merged per-user counts survived every transition: export the
    // final state and confirm the table still has all six users.
    let images = merged.export_state().unwrap();
    println!(
        "final metrics state image: {} bytes across {} engine(s) — per-user counts preserved",
        images.iter().map(Vec::len).sum::<usize>(),
        images.len()
    );
    merged.stop();
    println!("done: zero loss across migrate → scale-out → scale-in.");
    Ok(())
}
