//! The offload planner: for every standard element, which processors can
//! host it, and where does the placement solver actually put a realistic
//! chain as the environment gets richer? (Paper §3's "exact choice of
//! configuration depends on resources available in the deployment
//! environment".)
//!
//! Run with: `cargo run --example offload_planner`

use adn::harness::object_store_schemas;
use adn_backend::Platform;
use adn_cluster::resources::{
    NodeId, NodeSpec, PlacementConstraint, SmartNicSpec, SwitchId, SwitchSpec,
};
use adn_controller::placement::{place, ElementConstraints, Environment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (req, resp) = object_store_schemas();

    // --- feasibility matrix -------------------------------------------------
    println!("=== element × platform feasibility (the §2 portability gate) ===\n");
    println!(
        "{:<14} {:<10} {:<8} {:<10} {:<8}",
        "element", "software", "ebpf", "smartnic", "switch"
    );
    for name in adn_elements::standard_names() {
        let ir = adn_elements::build(name, &[], &req, &resp)?;
        let cell = |p: Platform| match adn_backend::supports(&ir, p) {
            Ok(()) => "yes",
            Err(_) => "-",
        };
        println!(
            "{:<14} {:<10} {:<8} {:<10} {:<8}",
            name,
            cell(Platform::Software),
            cell(Platform::Ebpf),
            cell(Platform::SmartNic),
            cell(Platform::Switch)
        );
    }

    // A u64-keyed firewall shows what *does* reach the kernel/switch:
    println!("\n(string-keyed elements can't offload; numeric exact-match ones can —");
    println!(" e.g. `Firewall` matches a u64 field and compiles for eBPF and P4.)\n");

    // --- placement vs environment -------------------------------------------
    println!("=== where the solver puts LoadBalancer → Compress → Acl → Decompress ===\n");
    let elements: Vec<_> = ["LoadBalancer", "Compress", "Acl", "Decompress"]
        .iter()
        .map(|n| adn_elements::build(n, &[], &req, &resp))
        .collect::<Result<_, _>>()?;
    let constraints = vec![
        ElementConstraints {
            constraints: vec![PlacementConstraint::OffApp],
        },
        ElementConstraints {
            constraints: vec![PlacementConstraint::SenderSide],
        },
        ElementConstraints {
            constraints: vec![PlacementConstraint::OffApp],
        },
        ElementConstraints {
            constraints: vec![PlacementConstraint::ReceiverSide],
        },
    ];

    let node = |id: u32, ebpf: bool, nic: bool| NodeSpec {
        id: NodeId(id),
        name: format!("node{id}"),
        cpu_slots: 16,
        ebpf_capable: ebpf,
        smartnic: nic.then_some(SmartNicSpec { cpu_slots: 8 }),
    };
    let switch = |prog: bool| SwitchSpec {
        id: SwitchId(1),
        name: "tor".into(),
        programmable: prog,
        table_capacity: 4096,
    };

    let environments = [
        ("bare hosts (sidecars only)", false, false, false),
        ("eBPF-capable kernels", true, false, false),
        ("+ SmartNICs", true, true, false),
        ("+ programmable switch", true, true, true),
    ];
    for (label, ebpf, nic, prog_switch) in environments {
        let env = Environment {
            client_node: node(1, ebpf, nic),
            server_node: node(2, ebpf, nic),
            switch: prog_switch.then(|| switch(true)),
            allow_in_app: true,
        };
        let placement = place(&elements, &constraints, &env)?;
        println!("{label}:");
        println!(
            "  {}  (cost {:.0})",
            placement.describe(&elements),
            placement.cost
        );
    }

    println!("\nthe same specification, four different distributed implementations —");
    println!("no element code changed.");
    Ok(())
}
