//! Quickstart: write an element in the ADN DSL, compile it, inspect what
//! the compiler produces, deploy it, and push RPCs through it.
//!
//! Run with: `cargo run --example quickstart`

use adn::harness::{object_store_schemas, AdnWorld, WorldConfig};
use adn_cluster::resources::ElementSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The network functionality, in the DSL (paper Figure 4 flavour):
    //    block requests whose user lacks write permission.
    let source = r#"
        element TeamAcl() {
            state ac_tab(username: string key, permission: string) init {
                ('alice', 'W'),
                ('bob',   'R')
            };
            on request {
                SELECT * FROM input
                JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W'
                ELSE ABORT(7, 'permission denied');
            }
        }
    "#;

    // 2. Compile the front half by hand to look inside.
    let (request_schema, response_schema) = object_store_schemas();
    let checked = adn_dsl::compile_frontend(source, &request_schema, &response_schema)?;
    println!("element `{}` typechecks.", checked.def.name);
    println!(
        "  reads: {:?}  writes: {:?}  can_drop: {}  deterministic: {}",
        checked.request_facts.reads,
        checked.request_facts.writes,
        checked.request_facts.can_drop,
        checked.deterministic(),
    );

    let ir = adn_ir::lower_element(&checked, &[], &request_schema, &response_schema)?;
    println!("\n--- what the compiler would emit as a Rust mRPC module ---");
    let generated = adn_backend::rust_codegen::generate(&ir);
    for line in generated.lines().take(18) {
        println!("  {line}");
    }
    println!("  ... ({} more lines)", generated.lines().count() - 18);

    // Where could this run? The feasibility gate per platform:
    println!("\n--- placement feasibility ---");
    for platform in [
        adn_backend::Platform::Software,
        adn_backend::Platform::Ebpf,
        adn_backend::Platform::SmartNic,
        adn_backend::Platform::Switch,
    ] {
        match adn_backend::supports(&ir, platform) {
            Ok(()) => println!("  {platform}: OK"),
            Err(reason) => println!("  {platform}: no — {reason}"),
        }
    }

    // 3. Deploy it end to end (client, controller, server replica) and call.
    let mut config = WorldConfig::of_elements(&[]);
    config.chain = vec![ElementSpec {
        element: "TeamAcl".into(),
        source: Some(source.into()),
        args: vec![],
        constraints: vec![],
    }];
    let world = AdnWorld::start(config)?;
    println!("\ndeployed: {}", world.describe());

    let ok = world.call(1, "alice", b"hello adn")?;
    println!("alice's call succeeded: {ok}");
    match world.call(2, "bob", b"hello adn") {
        Err(e) => println!("bob's call was rejected: {e}"),
        Ok(_) => unreachable!("bob only has read permission"),
    }
    Ok(())
}
