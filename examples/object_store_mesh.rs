//! The paper's §2 scenario, end to end: service A calls service B (two
//! replicas holding disjoint object spaces); the network must (1) load-
//! balance by object id, (2) compress/decompress payloads, (3) enforce
//! access control. We deploy it twice — in a bare environment and in a
//! hardware-rich one — and contrast with the sidecar-mesh baseline.
//!
//! Run with: `cargo run --example object_store_mesh`

use adn::harness::{AdnWorld, EnvPreset, MeshPolicies, MeshWorld, WorldConfig};
use adn_cluster::resources::PlacementConstraint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let payload = vec![0x5Au8; 1024];

    println!("=== the §2 chain: LoadBalancer → Compress → Acl → Decompress ===\n");

    // --- ADN, bare hosts: everything lands in the RPC libraries ----------
    let mut cfg = WorldConfig::of_elements(&["LoadBalancer", "Compress", "Acl", "Decompress"]);
    cfg.replicas = 2;
    cfg.env = EnvPreset::Bare;
    // Decompression must happen at the receiver side.
    cfg.chain[3].constraints = vec![PlacementConstraint::ReceiverSide];
    let bare = AdnWorld::start(cfg)?;
    println!("bare environment placement:\n  {}", bare.describe());
    exercise(&bare, &payload)?;

    // --- ADN, rich hosts + trust constraints ------------------------------
    let mut cfg = WorldConfig::of_elements(&["LoadBalancer", "Compress", "Acl", "Decompress"]);
    cfg.replicas = 2;
    cfg.env = EnvPreset::Rich;
    cfg.chain[0].constraints = vec![PlacementConstraint::OffApp];
    cfg.chain[2].constraints = vec![PlacementConstraint::OffApp];
    cfg.chain[3].constraints = vec![PlacementConstraint::ReceiverSide];
    let rich = AdnWorld::start(cfg)?;
    println!("\nrich environment placement (LB + ACL pushed to the switch):");
    println!("  {}", rich.describe());
    exercise(&rich, &payload)?;

    // --- the baseline mesh, for contrast ----------------------------------
    println!("\n=== the same policies as a sidecar mesh ===");
    let mesh = MeshWorld::start(MeshPolicies::all(0.0), 7);
    let t0 = std::time::Instant::now();
    let n = 200;
    for i in 0..n {
        let _ = mesh.call(i, "alice", &payload);
    }
    let mesh_us = t0.elapsed().as_micros() as f64 / n as f64;
    let t0 = std::time::Instant::now();
    for i in 0..n {
        let _ = rich.call(i, "alice", &payload)?;
    }
    let adn_us = t0.elapsed().as_micros() as f64 / n as f64;
    println!(
        "mean latency over {n} calls: mesh {mesh_us:.0} us, ADN {adn_us:.0} us ({:.1}x)",
        mesh_us / adn_us
    );
    Ok(())
}

fn exercise(world: &AdnWorld, payload: &[u8]) -> Result<(), Box<dyn std::error::Error>> {
    // Writers succeed, payload survives compress→decompress.
    let resp = world.call(1, "alice", payload)?;
    assert_eq!(
        resp.get("payload").and_then(|v| v.as_bytes()),
        Some(payload),
        "payload must roundtrip"
    );
    // Readers are denied by the ACL.
    let denied = world.call(2, "bob", payload);
    assert!(denied.is_err(), "bob only reads");
    // Different object ids spread across both replicas (empty-payload
    // probes make each replica identify itself in the response).
    let mut replicas_hit = std::collections::HashSet::new();
    for oid in 0..32 {
        let resp = world.call(oid, "carol", b"")?;
        replicas_hit.insert(
            resp.get("payload")
                .and_then(|v| v.as_bytes())
                .map(<[u8]>::to_vec),
        );
    }
    println!(
        "  writers OK, readers denied, {} replicas served traffic",
        replicas_hit.len()
    );
    Ok(())
}
